#ifndef GQE_NET_CONN_H_
#define GQE_NET_CONN_H_

#include <cstdint>
#include <deque>
#include <string>

#include "net/frame.h"

namespace gqe {

/// One accepted TCP connection: nonblocking fd, incremental frame
/// decoder on the read side, a bounded write buffer on the write side,
/// and a FIFO of pending responses that keeps answers in request order
/// even when the engine finishes them out of order (or coalescing
/// resolves several at once).
///
/// The connection does bytes and buffers only; policy — frame dispatch,
/// backpressure thresholds, deadlines, shedding — lives in NetServer,
/// which reads the bookkeeping fields this class maintains.
class Conn {
 public:
  /// Takes ownership of `fd` (closed on destruction). `now_ms` seeds
  /// the activity clocks; `max_frame_payload` bounds decoded frames.
  Conn(int fd, uint64_t id, double now_ms, size_t max_frame_payload);
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }

  enum class IoResult {
    kProgress,  // moved at least one byte
    kIdle,      // EAGAIN — nothing to do right now
    kEof,       // peer half-closed its write side (read side only)
    kError,     // hard socket error; the connection is unusable
  };

  /// Reads until EAGAIN/EOF, feeding the frame decoder. Updates
  /// last_read_ms and the partial-frame clock.
  IoResult ReadSome(double now_ms);

  /// Flushes the write buffer (MSG_NOSIGNAL — a dead peer yields EPIPE,
  /// never a signal). Updates last_write_progress_ms on any progress.
  IoResult WriteSome(double now_ms);

  /// Appends pre-encoded frame bytes to the write buffer.
  void EnqueueBytes(std::string bytes);

  /// One queued response slot, in request arrival order. Immediate
  /// responses (errors, pongs) enter already done; engine-backed ones
  /// carry the ticket and materialize when the engine finishes.
  struct Pending {
    uint64_t ticket = 0;
    std::string request_id;
    bool done = false;
    std::string frame;
  };

  std::deque<Pending>& pending() { return pending_; }

  /// Moves the contiguous done prefix of the pending FIFO into the
  /// write buffer (responses never overtake earlier requests' answers).
  /// Returns the number of responses released.
  size_t FlushPending();

  /// Re-arms the partial-frame clock after the owner drained complete
  /// frames from the decoder: a frame that has started but not finished
  /// arriving by the read deadline is the slow-loris signal.
  void NoteDecodeProgress(double now_ms);

  FrameDecoder& decoder() { return decoder_; }

  size_t outbuf_size() const { return outbuf_.size() - outbuf_sent_; }
  bool wants_write() const { return outbuf_size() > 0; }

  bool input_closed() const { return input_closed_; }

  /// True once the peer is gone or the server decided to close; the
  /// owner unregisters and destroys the connection when it sees this.
  bool closed() const { return closed_; }
  void MarkClosed() { closed_ = true; }

  /// Activity clocks (engine-clock milliseconds), read by the server's
  /// deadline sweep.
  double last_activity_ms() const { return last_activity_ms_; }
  double partial_frame_since_ms() const { return partial_frame_since_ms_; }
  double write_stalled_since_ms() const { return write_stalled_since_ms_; }

  /// Server-side backpressure flag: reading is paused while the peer
  /// lets its responses pile up past the soft write-buffer limit.
  bool read_paused = false;

 private:
  int fd_;
  uint64_t id_;
  FrameDecoder decoder_;
  std::deque<Pending> pending_;
  std::string outbuf_;
  size_t outbuf_sent_ = 0;
  bool input_closed_ = false;
  bool closed_ = false;
  double last_activity_ms_;
  double partial_frame_since_ms_ = 0.0;  // 0 = no partial frame pending
  double write_stalled_since_ms_ = 0.0;  // 0 = write buffer empty
};

}  // namespace gqe

#endif  // GQE_NET_CONN_H_
