#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "base/subprocess.h"

namespace gqe {

namespace {

std::string FormatStat(const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key, value);
  return buf;
}

}  // namespace

std::string NetServerStats::ToString() const {
  std::string out = "net:";
  out += FormatStat("accepted", accepted);
  out += FormatStat("admitted", admitted);
  out += FormatStat("completed", completed);
  out += FormatStat("degraded", degraded);
  out += FormatStat("failed", failed);
  out += FormatStat("coalesced", coalesced);
  out += FormatStat("shed_overloaded", shed_overloaded);
  out += FormatStat("shed_shutdown", shed_shutdown);
  out += FormatStat("bad_requests", bad_requests);
  out += FormatStat("protocol_errors", protocol_errors);
  out += FormatStat("timeouts", timeouts);
  out += FormatStat("slow_client_closes", slow_client_closes);
  out += FormatStat("pings", pings);
  out += FormatStat("journal_hits", journal_hits);
  out += FormatStat("reattached", reattached);
  out += FormatStat("fd_exhausted", fd_exhausted);
  return out;
}

NetServer::NetServer(const ServeOptions& serve_options,
                     const NetServerOptions& net_options)
    : engine_(serve_options), options_(net_options) {}

NetServer::~NetServer() {
  for (auto& [fd, conn] : conns_) loop_.Remove(fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    UnregisterFdClosedInWorkers(listen_fd_);
    ::close(listen_fd_);
  }
}

bool NetServer::Listen(std::string* error) {
  if (!loop_.ok()) {
    if (error) *error = "epoll_create failed";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error) *error = "socket failed";
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error) *error = "bad bind address: " + options_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    if (error) {
      *error = "bind/listen failed on " + options_.bind_address + ":" +
               std::to_string(options_.port);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (!loop_.Add(listen_fd_, EventLoop::kReadable,
                 [this](uint32_t) { OnAcceptable(); })) {
    if (error) *error = "epoll add failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // Forked workers must not inherit the listener: an orphan holding it
  // in LISTEN state would make bind() fail on daemon restart.
  RegisterFdClosedInWorkers(listen_fd_);
  return true;
}

void NetServer::OnAcceptable() {
  for (;;) {
    if (options_.fd_limit_for_test != 0 &&
        conns_.size() >= options_.fd_limit_for_test) {
      errno = EMFILE;
      PauseAccept(engine_.NowMs());
      return;
    }
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds: the pending connection cannot even be accepted to
        // be told so. A level-triggered readable listener would spin the
        // loop hot on this error — unregister it and come back when a
        // close frees an fd (ReapClosed) or the backoff expires.
        PauseAccept(engine_.NowMs());
        return;
      }
      return;  // EAGAIN or a transient accept error; epoll will re-arm
    }
    accept_backoff_ms_ = 0.0;  // fd pressure cleared
    if (draining_ || conns_.size() >= options_.max_connections) {
      // Shed at the door: one structured OVERLOADED frame (best effort —
      // the kernel buffer takes a 100-byte frame or the peer is already
      // gone), then close. Never queued, never silently dropped.
      const std::string frame = EncodeFrame(
          FrameType::kError,
          MakeErrorPayload(draining_ ? "SHUTTING_DOWN" : "OVERLOADED",
                           draining_ ? "server is draining"
                                     : "connection limit reached"));
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      ++(draining_ ? stats_.shed_shutdown : stats_.shed_overloaded);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(fd, id, engine_.NowMs(),
                                       options_.max_frame_payload);
    if (!loop_.Add(fd, EventLoop::kReadable,
                   [this, fd](uint32_t events) { OnConnEvent(fd, events); })) {
      continue;  // conn destructor closes fd
    }
    ++stats_.accepted;
    conns_.emplace(fd, std::move(conn));
  }
}

void NetServer::PauseAccept(double now_ms) {
  ++stats_.fd_exhausted;
  if (accept_paused_ || listen_fd_ < 0) return;
  accept_backoff_ms_ = accept_backoff_ms_ == 0.0
                           ? options_.accept_backoff_ms
                           : accept_backoff_ms_ * 2;
  const double cap = options_.accept_backoff_ms * 20;
  if (accept_backoff_ms_ > cap) accept_backoff_ms_ = cap;
  accept_resume_at_ms_ = now_ms + accept_backoff_ms_;
  loop_.Remove(listen_fd_);
  accept_paused_ = true;
}

void NetServer::ResumeAccept() {
  if (!accept_paused_ || listen_fd_ < 0 || draining_) return;
  accept_paused_ = false;
  loop_.Add(listen_fd_, EventLoop::kReadable,
            [this](uint32_t) { OnAcceptable(); });
}

void NetServer::OnConnEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  if (conn->closed()) return;
  const double now = engine_.NowMs();
  if ((events & EventLoop::kReadable) && !conn->read_paused) {
    const Conn::IoResult r = conn->ReadSome(now);
    if (r == Conn::IoResult::kError) {
      conn->MarkClosed();
      return;
    }
    ProcessFrames(conn);
    if (conn->closed()) return;
  }
  if (events & EventLoop::kWritable) {
    if (conn->WriteSome(now) == Conn::IoResult::kError) {
      conn->MarkClosed();
      return;
    }
  }
  FlushConn(conn);
}

void NetServer::ProcessFrames(Conn* conn) {
  const double now = engine_.NowMs();
  Frame frame;
  std::string error;
  for (;;) {
    const FrameDecoder::Result r = conn->decoder().Next(&frame, &error);
    if (r == FrameDecoder::Result::kNeedMore) break;
    if (r == FrameDecoder::Result::kError) {
      FailConn(conn, "PROTOCOL", error, &stats_.protocol_errors);
      return;
    }
    switch (frame.type) {
      case FrameType::kRequest:
        HandleRequest(conn, frame.payload);
        break;
      case FrameType::kPing:
        ++stats_.pings;
        RespondImmediate(conn, FrameType::kPong, std::move(frame.payload));
        break;
      case FrameType::kPong:
        break;  // unsolicited but harmless
      default:
        // kResult/kError are server-to-client only; a client sending one
        // is out of protocol and the stream is no longer trustworthy.
        FailConn(conn, "PROTOCOL",
                 std::string("unexpected client frame type ") +
                     FrameTypeName(frame.type),
                 &stats_.protocol_errors);
        return;
    }
    if (conn->closed()) return;
  }
  conn->NoteDecodeProgress(now);
}

std::string NetServer::CoalesceKey(const EvalRequest& request) {
  // Every request field except id: two requests with equal keys are the
  // same evaluation, and terminal result lines are fault-invariant, so
  // one worker run can answer all of them (each under its own id).
  std::string key;
  key += RequestKindName(request.kind);
  key += '|';
  key += request.program_path;
  key += '|';
  key += request.query;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "|%zu|%" PRIu64 "|%.3f|%zu|%d|%d|%" PRIu64 "|%d|%d",
                request.budget.max_facts, request.budget.max_search_nodes,
                request.budget.deadline_ms, request.address_space_mb,
                request.max_level, static_cast<int>(request.fault.type),
                request.fault.at_checkpoint, request.fault.exit_code,
                request.fault.on_attempt);
  key += buf;
  return key;
}

void NetServer::HandleRequest(Conn* conn, const std::string& payload) {
  if (draining_) {
    ++stats_.shed_shutdown;
    RespondImmediate(
        conn, FrameType::kError,
        MakeErrorPayload("SHUTTING_DOWN", "server is draining"));
    return;
  }
  Manifest manifest;
  std::string error;
  if (!ParseManifest(payload, options_.program_root, &manifest, &error)) {
    ++stats_.bad_requests;
    RespondImmediate(conn, FrameType::kError,
                     MakeErrorPayload("BAD_REQUEST", error));
    return;
  }
  if (manifest.requests.size() != 1) {
    ++stats_.bad_requests;
    RespondImmediate(
        conn, FrameType::kError,
        MakeErrorPayload("BAD_REQUEST",
                         "a request frame must carry exactly one request "
                         "line, got " +
                             std::to_string(manifest.requests.size())));
    return;
  }
  const EvalRequest& request = manifest.requests[0];
  // Durable serving: a request id that already reached a terminal state
  // replays its recorded line from the journal-backed cache — no worker,
  // no admission, works across daemon restarts and even under overload.
  // An id currently in flight (e.g. a resend racing its own completion)
  // attaches as an extra waiter to the running evaluation. An id reused
  // with a *different* request body is a client bug, surfaced as such.
  RequestRow cached_row;
  switch (engine_.LookupCompleted(request, &cached_row)) {
    case ServeEngine::CacheLookup::kHit: {
      ++stats_.journal_hits;
      std::string line;
      AppendResultLine(cached_row, &line);
      RespondImmediate(conn, FrameType::kResult, std::move(line));
      return;
    }
    case ServeEngine::CacheLookup::kMismatch:
      ++stats_.bad_requests;
      RespondImmediate(
          conn, FrameType::kError,
          MakeErrorPayload("BAD_REQUEST",
                           "id '" + request.id +
                               "' was already used by a different request"));
      return;
    case ServeEngine::CacheLookup::kMiss:
      break;
  }
  bool id_mismatch = false;
  const uint64_t inflight_ticket = engine_.FindInflight(request, &id_mismatch);
  if (id_mismatch) {
    ++stats_.bad_requests;
    RespondImmediate(
        conn, FrameType::kError,
        MakeErrorPayload("BAD_REQUEST",
                         "id '" + request.id +
                             "' is in flight for a different request"));
    return;
  }
  if (inflight_ticket != 0) {
    ++stats_.reattached;
    Conn::Pending pending;
    pending.ticket = inflight_ticket;
    pending.request_id = request.id;
    conn->pending().push_back(std::move(pending));
    waiters_[inflight_ticket].push_back(Waiter{conn->fd(), conn->id()});
    return;
  }
  if (options_.queue_capacity != 0 &&
      engine_.ActiveJobs() >= options_.queue_capacity) {
    ++stats_.shed_overloaded;
    RespondImmediate(conn, FrameType::kError,
                     MakeErrorPayload("OVERLOADED", "request queue full"));
    return;
  }
  uint64_t ticket = 0;
  const std::string key = options_.coalesce ? CoalesceKey(request) : "";
  if (options_.coalesce) {
    auto it = coalesce_inflight_.find(key);
    if (it != coalesce_inflight_.end()) {
      ticket = it->second;
      ++stats_.coalesced;
    }
  }
  if (ticket == 0) {
    ticket = engine_.Submit(request);
    ++stats_.admitted;
    if (options_.coalesce) {
      coalesce_inflight_[key] = ticket;
      ticket_coalesce_key_[ticket] = key;
    }
  }
  Conn::Pending pending;
  pending.ticket = ticket;
  pending.request_id = request.id;
  conn->pending().push_back(std::move(pending));
  waiters_[ticket].push_back(Waiter{conn->fd(), conn->id()});
}

void NetServer::RespondImmediate(Conn* conn, FrameType type,
                                 std::string payload) {
  Conn::Pending pending;
  pending.done = true;
  pending.frame = EncodeFrame(type, payload);
  conn->pending().push_back(std::move(pending));
  FlushConn(conn);
}

void NetServer::DispatchFinished(std::vector<ServeEngine::Finished>& finished) {
  for (auto& f : finished) {
    switch (f.row.state) {
      case TerminalState::kCompleted:
        ++stats_.completed;
        break;
      case TerminalState::kDegraded:
        ++stats_.degraded;
        break;
      default:
        ++stats_.failed;
        break;
    }
    auto wit = waiters_.find(f.ticket);
    if (wit != waiters_.end()) {
      for (const Waiter& waiter : wit->second) {
        auto cit = conns_.find(waiter.fd);
        // The fd may have been reused by a newer connection since this
        // waiter registered; the conn id disambiguates.
        if (cit == conns_.end() || cit->second->id() != waiter.conn_id ||
            cit->second->closed()) {
          continue;
        }
        Conn* conn = cit->second.get();
        for (Conn::Pending& pending : conn->pending()) {
          if (pending.done || pending.ticket != f.ticket) continue;
          // Coalesced waiters each get the row under their own request
          // id; every other field of the line is identical by
          // construction.
          RequestRow row = f.row;
          row.id = pending.request_id;
          std::string line;
          AppendResultLine(row, &line);
          pending.frame = EncodeFrame(FrameType::kResult, line);
          pending.done = true;
          break;
        }
        FlushConn(conn);
      }
      waiters_.erase(wit);
    }
    auto kit = ticket_coalesce_key_.find(f.ticket);
    if (kit != ticket_coalesce_key_.end()) {
      coalesce_inflight_.erase(kit->second);
      ticket_coalesce_key_.erase(kit);
    }
  }
}

void NetServer::FlushConn(Conn* conn) {
  if (conn->closed()) return;
  conn->FlushPending();
  if (conn->wants_write() &&
      conn->WriteSome(engine_.NowMs()) == Conn::IoResult::kError) {
    conn->MarkClosed();
    return;
  }
  // Peer half-closed and everything owed has been delivered: clean close.
  if (conn->input_closed() && conn->pending().empty() && !conn->wants_write()) {
    conn->MarkClosed();
    return;
  }
  UpdateInterest(conn);
}

void NetServer::UpdateInterest(Conn* conn) {
  if (conn->closed()) return;
  const size_t backlog = conn->outbuf_size();
  if (backlog > options_.write_buffer_hard_limit) {
    // The peer has ignored this much output; holding more only lets one
    // slow reader consume the server's memory.
    ++stats_.slow_client_closes;
    conn->MarkClosed();
    return;
  }
  conn->read_paused = backlog > options_.write_buffer_soft_limit;
  uint32_t events = 0;
  if (!conn->read_paused && !conn->input_closed()) {
    events |= EventLoop::kReadable;
  }
  if (conn->wants_write()) events |= EventLoop::kWritable;
  loop_.Modify(conn->fd(), events);
}

void NetServer::SweepDeadlines(double now_ms) {
  if (accept_paused_ && now_ms >= accept_resume_at_ms_) ResumeAccept();
  for (auto& [fd, conn_ptr] : conns_) {
    Conn* conn = conn_ptr.get();
    if (conn->closed()) continue;
    if (conn->partial_frame_since_ms() != 0.0 &&
        now_ms - conn->partial_frame_since_ms() >
            options_.frame_read_timeout_ms) {
      FailConn(conn, "TIMEOUT", "frame not completed within deadline",
               &stats_.timeouts);
      continue;
    }
    if (conn->write_stalled_since_ms() != 0.0 &&
        now_ms - conn->write_stalled_since_ms() >
            options_.write_stall_timeout_ms) {
      // Can't even apologize — the peer isn't reading. Just close.
      ++stats_.slow_client_closes;
      conn->MarkClosed();
      continue;
    }
    const bool quiescent = conn->pending().empty() && !conn->wants_write() &&
                           !conn->decoder().mid_frame();
    if (quiescent && draining_) {
      conn->MarkClosed();  // drain: nothing owed, stop waiting on the peer
      continue;
    }
    if (quiescent &&
        now_ms - conn->last_activity_ms() > options_.idle_timeout_ms) {
      conn->MarkClosed();
    }
  }
}

void NetServer::FailConn(Conn* conn, const char* code,
                         const std::string& detail, uint64_t* counter) {
  ++*counter;
  // Stream-scoped failure: the error frame jumps the response FIFO
  // (those responses are forfeit — byte alignment is lost or the peer
  // breached a deadline) and the connection closes after one best-effort
  // flush.
  conn->EnqueueBytes(
      EncodeFrame(FrameType::kError, MakeErrorPayload(code, detail)));
  conn->WriteSome(engine_.NowMs());
  conn->MarkClosed();
}

void NetServer::ReapClosed() {
  bool freed = false;
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second->closed()) {
      loop_.Remove(it->first);
      it = conns_.erase(it);  // Conn destructor closes the fd
      freed = true;
    } else {
      ++it;
    }
  }
  // A closed connection is exactly the fd the exhausted accept loop was
  // waiting for — re-arm immediately instead of riding out the backoff.
  if (freed && accept_paused_) ResumeAccept();
}

int NetServer::ComputeWaitMs(int max_wait_ms) const {
  int wait = max_wait_ms < 0 ? 100 : max_wait_ms;
  if (!engine_.Idle()) {
    // Workers in flight (or backoff timers running): pump promptly.
    wait = wait < 1 ? wait : 1;
  } else if (wait > 100) {
    wait = 100;  // deadline sweep granularity
  }
  return wait;
}

bool NetServer::PollOnce(int max_wait_ms) {
  loop_.RunOnce(ComputeWaitMs(max_wait_ms));
  if (!engine_.Idle()) {
    std::vector<ServeEngine::Finished> finished;
    engine_.Pump(&finished);
    if (!finished.empty()) DispatchFinished(finished);
  }
  SweepDeadlines(engine_.NowMs());
  ReapClosed();
  if (draining_ && engine_.Idle() && conns_.empty()) {
    // Drain complete: every result row is already journaled (write-ahead
    // of dispatch); one final fsync makes the whole drained state
    // durable before exit 0, so a restart serves it without recomputing.
    engine_.FlushJournal();
    return false;
  }
  return true;
}

int NetServer::Run(const volatile sig_atomic_t* drain_flag) {
  for (;;) {
    if (drain_flag != nullptr && *drain_flag != 0 && !draining_) {
      RequestDrain();
    }
    if (!PollOnce(100)) return 0;
  }
}

void NetServer::RequestDrain() {
  if (draining_) return;
  draining_ = true;
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    UnregisterFdClosedInWorkers(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace gqe
