#include "net/conn.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "base/subprocess.h"

namespace gqe {

// Connection sockets are registered for closing in forked workers: the
// serve supervisor forks without exec, so SOCK_CLOEXEC does nothing and
// an orphaned worker would otherwise hold the socket open past a
// supervisor kill -9, hiding the crash from the client.
Conn::Conn(int fd, uint64_t id, double now_ms, size_t max_frame_payload)
    : fd_(fd),
      id_(id),
      decoder_(max_frame_payload),
      last_activity_ms_(now_ms) {
  RegisterFdClosedInWorkers(fd_);
}

Conn::~Conn() {
  if (fd_ >= 0) {
    UnregisterFdClosedInWorkers(fd_);
    ::close(fd_);
  }
}

Conn::IoResult Conn::ReadSome(double now_ms) {
  if (closed_ || input_closed_) return IoResult::kIdle;
  char buffer[16384];
  bool progress = false;
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      decoder_.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      progress = true;
      last_activity_ms_ = now_ms;
      continue;
    }
    if (n == 0) {
      input_closed_ = true;
      return IoResult::kEof;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return progress ? IoResult::kProgress : IoResult::kIdle;
    }
    // ECONNRESET and friends: the peer vanished mid-stream (the chaos
    // client's mid-frame disconnect lands here). A clean close, not a
    // server fault.
    return IoResult::kError;
  }
}

Conn::IoResult Conn::WriteSome(double now_ms) {
  if (closed_) return IoResult::kIdle;
  bool progress = false;
  while (outbuf_sent_ < outbuf_.size()) {
    const ssize_t n =
        ::send(fd_, outbuf_.data() + outbuf_sent_,
               outbuf_.size() - outbuf_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      outbuf_sent_ += static_cast<size_t>(n);
      progress = true;
      last_activity_ms_ = now_ms;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EPIPE/ECONNRESET: the peer stopped reading and left. MSG_NOSIGNAL
    // keeps that an error return instead of a process-killing SIGPIPE.
    return IoResult::kError;
  }
  if (outbuf_sent_ == outbuf_.size()) {
    outbuf_.clear();
    outbuf_sent_ = 0;
    write_stalled_since_ms_ = 0.0;
  } else {
    if (progress || write_stalled_since_ms_ == 0.0) {
      write_stalled_since_ms_ = now_ms;
    }
  }
  return progress ? IoResult::kProgress : IoResult::kIdle;
}

void Conn::EnqueueBytes(std::string bytes) {
  if (closed_) return;
  if (outbuf_.empty()) {
    outbuf_ = std::move(bytes);
    outbuf_sent_ = 0;
  } else {
    outbuf_.append(bytes);
  }
}

size_t Conn::FlushPending() {
  size_t released = 0;
  while (!pending_.empty() && pending_.front().done) {
    EnqueueBytes(std::move(pending_.front().frame));
    pending_.pop_front();
    ++released;
  }
  return released;
}

void Conn::NoteDecodeProgress(double now_ms) {
  if (decoder_.mid_frame()) {
    if (partial_frame_since_ms_ == 0.0) partial_frame_since_ms_ = now_ms;
  } else {
    partial_frame_since_ms_ = 0.0;
  }
}

}  // namespace gqe
