#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include "base/subprocess.h"

namespace gqe {

namespace {

bool WaitFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd = {};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0 && errno == EINTR) continue;
    return n > 0;
  }
}

}  // namespace

NetClient::~NetClient() { Close(); }

bool NetClient::Connect(const std::string& host, int port, int timeout_ms,
                        std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error) *error = "socket failed";
    return false;
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad address: " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      if (error) *error = "connect failed";
      Close();
      return false;
    }
    if (!WaitFor(fd_, POLLOUT, timeout_ms)) {
      if (error) *error = "connect timed out";
      Close();
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      if (error) *error = "connect failed (refused?)";
      Close();
      return false;
    }
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool NetClient::ConnectWithRetry(const std::string& host, int port,
                                 int deadline_ms, std::string* error,
                                 uint64_t jitter_seed) {
  struct timespec start = {};
  ::clock_gettime(CLOCK_MONOTONIC, &start);
  for (int attempt = 1;; ++attempt) {
    std::string connect_error;
    if (Connect(host, port, 1000, &connect_error)) return true;
    struct timespec now = {};
    ::clock_gettime(CLOCK_MONOTONIC, &now);
    const double elapsed_ms =
        (now.tv_sec - start.tv_sec) * 1000.0 +
        (now.tv_nsec - start.tv_nsec) / 1e6;
    if (elapsed_ms >= deadline_ms) {
      if (error) {
        *error = "connect retry deadline exceeded: " + connect_error;
      }
      return false;
    }
    const double delay = BackoffDelayMs(attempt, 50.0, 1000.0, jitter_seed,
                                        static_cast<uint64_t>(port));
    ::usleep(static_cast<useconds_t>(delay * 1000));
  }
}

bool NetClient::SendFrame(FrameType type, std::string_view payload) {
  return SendRaw(EncodeFrame(type, payload));
}

bool NetClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!WaitFor(fd_, POLLOUT, 5000)) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool NetClient::SendRawChunked(std::string_view bytes, size_t chunk,
                               int delay_us) {
  if (chunk == 0) chunk = 1;
  for (size_t off = 0; off < bytes.size(); off += chunk) {
    const size_t n = bytes.size() - off < chunk ? bytes.size() - off : chunk;
    if (!SendRaw(bytes.substr(off, n))) return false;
    if (delay_us > 0) ::usleep(static_cast<useconds_t>(delay_us));
  }
  return true;
}

NetClient::RecvResult NetClient::RecvFrame(Frame* out, int timeout_ms,
                                           std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return RecvResult::kError;
  }
  for (;;) {
    std::string decode_error;
    switch (decoder_.Next(out, &decode_error)) {
      case FrameDecoder::Result::kFrame:
        return RecvResult::kFrame;
      case FrameDecoder::Result::kError:
        if (error) *error = decode_error;
        return RecvResult::kError;
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    char buffer[16384];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      decoder_.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      if (decoder_.mid_frame()) {
        if (error) *error = "connection closed mid-frame";
        return RecvResult::kError;
      }
      return RecvResult::kClosed;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!WaitFor(fd_, POLLIN, timeout_ms)) return RecvResult::kTimeout;
      continue;
    }
    if (error) *error = "recv failed";
    return RecvResult::kError;
  }
}

void NetClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

}  // namespace gqe
