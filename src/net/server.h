#ifndef GQE_NET_SERVER_H_
#define GQE_NET_SERVER_H_

#include <signal.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/conn.h"
#include "net/event_loop.h"
#include "serve/service.h"

namespace gqe {

/// Policy knobs for the TCP front end. Every limit exists to convert a
/// misbehaving or overloaded peer into a structured error or a clean
/// close — the serving process itself never stalls on one connection.
struct NetServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the chosen port back via port().
  int port = 0;
  int backlog = 64;

  /// Global connection cap. A connection over the cap is answered with
  /// one OVERLOADED error frame and closed — shed, never queued.
  size_t max_connections = 64;

  /// Admission control: requests beyond this many active in the engine
  /// are answered OVERLOADED instead of queued without bound. 0 = off.
  size_t queue_capacity = 256;

  size_t max_frame_payload = kDefaultMaxFramePayload;

  /// Backpressure: above the soft limit the server stops *reading* from
  /// the connection (the peer must drain responses before sending more
  /// requests); above the hard limit the peer is declared dead-slow and
  /// the connection is closed.
  size_t write_buffer_soft_limit = 256 * 1024;
  size_t write_buffer_hard_limit = 4 * 1024 * 1024;

  /// Slow-loris defense: a frame that started arriving but has not
  /// completed within this window gets a TIMEOUT error and a close.
  double frame_read_timeout_ms = 5000.0;
  /// A connection with no traffic and no pending work is closed.
  double idle_timeout_ms = 30000.0;
  /// Write buffer nonempty with no drain progress for this long: the
  /// peer stopped reading; close (the OS buffers are already full).
  double write_stall_timeout_ms = 5000.0;

  /// Base directory request program= paths resolve against.
  std::string program_root = ".";

  /// Coalesce identical in-flight requests (same kind, program, query,
  /// budget, fault) into one worker evaluation fanned out to every
  /// waiter. Ids may differ — each waiter gets its own result line.
  bool coalesce = true;

  /// Accept-loop fd-exhaustion shed: when accept4 fails with EMFILE /
  /// ENFILE the listener is unregistered for this long (doubling up to
  /// 20x while exhaustion persists) instead of spinning hot on a
  /// level-triggered readable listener; any connection close re-arms it
  /// immediately, since a close is exactly what frees an fd.
  double accept_backoff_ms = 100.0;

  /// Test-only: treat accepting beyond this many connections as EMFILE
  /// without consuming the fd, so the exhaustion path is exercisable
  /// without lowering RLIMIT_NOFILE under a test runner. 0 = off.
  size_t fd_limit_for_test = 0;

  bool verbose = false;
};

struct NetServerStats {
  uint64_t accepted = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t degraded = 0;
  uint64_t failed = 0;
  uint64_t coalesced = 0;
  uint64_t shed_overloaded = 0;
  uint64_t shed_shutdown = 0;
  uint64_t bad_requests = 0;
  uint64_t protocol_errors = 0;
  uint64_t timeouts = 0;
  uint64_t slow_client_closes = 0;
  uint64_t pings = 0;
  /// Requests answered verbatim from the journal-backed result cache —
  /// duplicate ids and post-restart resends that never fired a worker.
  uint64_t journal_hits = 0;
  /// Duplicate in-flight ids attached as extra waiters to the already
  /// running evaluation (idempotency for resends that raced completion).
  uint64_t reattached = 0;
  /// accept4 EMFILE/ENFILE events shed with listener backoff.
  uint64_t fd_exhausted = 0;

  std::string ToString() const;
};

/// The network serving tier: a single-threaded epoll loop in front of
/// the fork-isolated ServeEngine. Single-threaded is load-bearing, not
/// an implementation shortcut — workers are forked without exec, which
/// is only safe from a single-threaded process (base/subprocess.h).
///
/// Robustness contract, exercised frame-by-frame by the chaos harness
/// (examples/gqe_net_client.cpp, scripts/serve_net_smoke.sh): any
/// malformed, truncated, oversized, bit-flipped, stalled or disconnected
/// input yields a structured error frame or a clean close; surviving
/// requests' result frames are byte-identical to the file-manifest path.
class NetServer {
 public:
  NetServer(const ServeOptions& serve_options,
            const NetServerOptions& net_options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens. False (with `error`) on failure.
  bool Listen(std::string* error);

  /// Port actually bound (resolves port 0).
  int port() const { return port_; }

  /// One event-loop turn: epoll dispatch (bounded by `max_wait_ms`),
  /// engine pump, response fan-out, backpressure and deadline sweeps.
  /// Returns false once a requested drain has fully completed — no
  /// in-flight requests, every response flushed, every connection
  /// closed. Tests drive this directly to interleave client I/O with
  /// server turns in one thread.
  bool PollOnce(int max_wait_ms);

  /// Serves until drain completes. `drain_flag` (typically set by a
  /// SIGTERM handler) is polled every turn; may be null.
  int Run(const volatile sig_atomic_t* drain_flag);

  /// Graceful drain: stop accepting, answer new requests with
  /// SHUTTING_DOWN, finish and flush in-flight requests, then close.
  void RequestDrain();

  bool draining() const { return draining_; }
  size_t connections() const { return conns_.size(); }
  const NetServerStats& stats() const { return stats_; }

 private:
  struct Waiter {
    int fd = -1;
    uint64_t conn_id = 0;
  };

  void OnAcceptable();
  void PauseAccept(double now_ms);
  void ResumeAccept();
  void OnConnEvent(int fd, uint32_t events);
  void ProcessFrames(Conn* conn);
  void HandleRequest(Conn* conn, const std::string& payload);
  void RespondImmediate(Conn* conn, FrameType type, std::string payload);
  void DispatchFinished(std::vector<ServeEngine::Finished>& finished);
  void FlushConn(Conn* conn);
  void UpdateInterest(Conn* conn);
  void SweepDeadlines(double now_ms);
  void FailConn(Conn* conn, const char* code, const std::string& detail,
                uint64_t* counter);
  void CloseConn(Conn* conn);
  void ReapClosed();
  int ComputeWaitMs(int max_wait_ms) const;
  static std::string CoalesceKey(const EvalRequest& request);

  ServeEngine engine_;
  NetServerOptions options_;
  EventLoop loop_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool draining_ = false;
  bool accept_paused_ = false;
  double accept_resume_at_ms_ = 0.0;
  double accept_backoff_ms_ = 0.0;  // current (doubling) backoff; 0 = reset
  uint64_t next_conn_id_ = 1;
  std::map<int, std::unique_ptr<Conn>> conns_;
  std::map<uint64_t, std::vector<Waiter>> waiters_;       // ticket -> conns
  std::map<std::string, uint64_t> coalesce_inflight_;     // key -> ticket
  std::map<uint64_t, std::string> ticket_coalesce_key_;   // reverse index
  NetServerStats stats_;
};

}  // namespace gqe

#endif  // GQE_NET_SERVER_H_
