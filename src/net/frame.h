#ifndef GQE_NET_FRAME_H_
#define GQE_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gqe {

/// Wire framing for the network serving tier: every message on a serve
/// connection is one length-prefixed, checksummed frame. The payloads
/// reuse the existing serve text codecs — a request frame carries one
/// manifest line (serve/request.h syntax) and a result frame carries the
/// corresponding deterministic "result:" line — so a network run is
/// byte-comparable against a file-manifest run of the same requests.
///
/// Layout (little-endian, 12-byte header):
///   u16 magic   0x5147 ("GQ")
///   u8  version kFrameVersion
///   u8  type    FrameType
///   u32 length  payload byte count (bounded; see FrameDecoder)
///   u32 crc32   CRC-32 of the payload bytes
///
/// The CRC turns a bit-flipped frame into a detected protocol error
/// instead of a silently corrupted request or answer; the length bound
/// turns an adversarial/oversized prefix into a structured rejection
/// instead of an allocation.
enum class FrameType : uint8_t {
  /// Client -> server: one manifest request line (text).
  kRequest = 1,
  /// Server -> client: the request's deterministic "result:" line, byte-
  /// identical to what the file-manifest path prints for the same
  /// request (including the trailing newline).
  kResult = 2,
  /// Server -> client: structured failure. Payload text is
  /// "CODE detail..." where CODE is one of OVERLOADED, SHUTTING_DOWN,
  /// BAD_REQUEST, PROTOCOL, TIMEOUT. Request-scoped codes (OVERLOADED,
  /// SHUTTING_DOWN, BAD_REQUEST) keep the connection open; stream-scoped
  /// codes (PROTOCOL, TIMEOUT) are followed by a close because the byte
  /// stream can no longer be trusted.
  kError = 3,
  /// Liveness probe; the server answers kPong with the same payload.
  kPing = 4,
  kPong = 5,
};

const char* FrameTypeName(FrameType type);

constexpr uint16_t kFrameMagic = 0x5147;  // "GQ" little-endian
constexpr uint8_t kFrameVersion = 1;
constexpr size_t kFrameHeaderSize = 12;

/// Default per-frame payload cap. Request and result lines are well
/// under 4 KiB; 1 MiB leaves room for future batch payloads while
/// keeping a hostile length prefix from reserving real memory.
constexpr size_t kDefaultMaxFramePayload = 1 << 20;

struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Encodes one frame (header + payload).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental frame reassembler for a nonblocking byte stream. Feed it
/// whatever read() produced — single bytes, partial headers, several
/// frames at once — and pull complete frames out. After the first
/// kError the decoder stays failed: framing errors are not recoverable
/// mid-stream (the reader has lost byte alignment), the connection must
/// be torn down.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(std::string_view bytes);

  enum class Result {
    kNeedMore,  // no complete frame buffered yet
    kFrame,     // *out holds the next frame
    kError,     // stream is damaged; *error says how
  };

  /// Consumes and returns the next complete frame, if any. The length
  /// bound is enforced against the header alone, before any payload is
  /// buffered past the cap — an oversized prefix never allocates.
  Result Next(Frame* out, std::string* error);

  /// Bytes fed but not yet consumed as frames.
  size_t buffered() const { return buffer_.size() - consumed_; }

  /// True when a frame has started arriving (at least one byte) but is
  /// not yet complete — the slow-loris signal the per-connection read
  /// deadline keys off.
  bool mid_frame() const { return buffered() > 0; }

  bool failed() const { return failed_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool failed_ = false;
  std::string failure_;
};

/// Builds a kError payload: "CODE detail". `code` must be a bare token
/// (no spaces) so clients can split on the first space.
std::string MakeErrorPayload(std::string_view code, std::string_view detail);

/// Splits an error payload into code and detail.
void SplitErrorPayload(std::string_view payload, std::string* code,
                       std::string* detail);

}  // namespace gqe

#endif  // GQE_NET_FRAME_H_
