#include "net/frame.h"

#include <cstring>

#include "base/serialize.h"

namespace gqe {

namespace {

void PutU16(std::string* out, uint16_t value) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint16_t>(static_cast<unsigned char>(p[1])) << 8;
}

uint32_t GetU32(const char* p) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(p[i]);
  }
  return value;
}

bool KnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kRequest) &&
         type <= static_cast<uint8_t>(FrameType::kPong);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kRequest:
      return "request";
    case FrameType::kResult:
      return "result";
    case FrameType::kError:
      return "error";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  PutU16(&out, kFrameMagic);
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(type));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload));
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (failed_) return;
  // Compact before growing: everything consumed as frames is dead weight.
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 4096)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Result FrameDecoder::Next(Frame* out, std::string* error) {
  if (failed_) {
    if (error != nullptr) *error = failure_;
    return Result::kError;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return Result::kNeedMore;
  const char* header = buffer_.data() + consumed_;

  const uint16_t magic = GetU16(header);
  if (magic != kFrameMagic) {
    failed_ = true;
    failure_ = "bad frame magic";
    if (error != nullptr) *error = failure_;
    return Result::kError;
  }
  const uint8_t version = static_cast<uint8_t>(header[2]);
  if (version != kFrameVersion) {
    failed_ = true;
    failure_ = "unsupported frame version " + std::to_string(version);
    if (error != nullptr) *error = failure_;
    return Result::kError;
  }
  const uint8_t type = static_cast<uint8_t>(header[3]);
  if (!KnownFrameType(type)) {
    failed_ = true;
    failure_ = "unknown frame type " + std::to_string(type);
    if (error != nullptr) *error = failure_;
    return Result::kError;
  }
  const uint32_t length = GetU32(header + 4);
  // Checked against the header alone: a hostile length prefix is
  // rejected before any payload bytes are buffered toward it.
  if (length > max_payload_) {
    failed_ = true;
    failure_ = "frame payload length " + std::to_string(length) +
               " exceeds cap " + std::to_string(max_payload_);
    if (error != nullptr) *error = failure_;
    return Result::kError;
  }
  if (available < kFrameHeaderSize + length) return Result::kNeedMore;

  const uint32_t expected_crc = GetU32(header + 8);
  std::string_view payload(buffer_.data() + consumed_ + kFrameHeaderSize,
                           length);
  if (Crc32(payload) != expected_crc) {
    failed_ = true;
    failure_ = "frame payload checksum mismatch";
    if (error != nullptr) *error = failure_;
    return Result::kError;
  }

  out->type = static_cast<FrameType>(type);
  out->payload.assign(payload.data(), payload.size());
  consumed_ += kFrameHeaderSize + length;
  return Result::kFrame;
}

std::string MakeErrorPayload(std::string_view code, std::string_view detail) {
  std::string payload(code);
  if (!detail.empty()) {
    payload.push_back(' ');
    payload.append(detail);
  }
  return payload;
}

void SplitErrorPayload(std::string_view payload, std::string* code,
                       std::string* detail) {
  const size_t space = payload.find(' ');
  if (space == std::string_view::npos) {
    if (code != nullptr) code->assign(payload);
    if (detail != nullptr) detail->clear();
    return;
  }
  if (code != nullptr) code->assign(payload.substr(0, space));
  if (detail != nullptr) detail->assign(payload.substr(space + 1));
}

}  // namespace gqe
