#ifndef GQE_NET_CLIENT_H_
#define GQE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/frame.h"

namespace gqe {

/// A deliberately low-level client for the serve wire protocol: it can
/// speak it correctly (SendRequest / RecvFrame) and it can violate it on
/// purpose (SendRaw, SendRawChunked, half-writes, mid-frame hangups),
/// which is what the chaos harness needs. Timeouts are poll()-based so a
/// wedged server shows up as a structured timeout, never a hung test.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects (blocking, with a timeout). False with `error` on failure.
  bool Connect(const std::string& host, int port, int timeout_ms,
               std::string* error);

  /// Connect with retry: keeps attempting (exponential backoff with
  /// deterministic jitter, base 50 ms capped at 1 s) until a connection
  /// succeeds or `deadline_ms` of wall clock has elapsed. This is what a
  /// client rides out a daemon restart with — connection refused while
  /// the daemon is down, then a clean session against the recovered one.
  bool ConnectWithRetry(const std::string& host, int port, int deadline_ms,
                        std::string* error, uint64_t jitter_seed = 1);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Encodes and sends one frame. False on any socket error.
  bool SendFrame(FrameType type, std::string_view payload);

  /// Sends one manifest request line as a kRequest frame.
  bool SendRequest(std::string_view request_line) {
    return SendFrame(FrameType::kRequest, request_line);
  }

  /// Sends raw bytes verbatim — the chaos faults (truncated frames,
  /// bit flips, bogus length prefixes) are built on this.
  bool SendRaw(std::string_view bytes);

  /// Sends `bytes` in chunks of `chunk` bytes with `delay_us` between
  /// them — the byte-at-a-time loopback test and the slow-loris probe.
  bool SendRawChunked(std::string_view bytes, size_t chunk, int delay_us);

  /// Receives the next complete frame. Result meanings:
  ///   kFrame    *out holds it
  ///   kTimeout  nothing complete within `timeout_ms` (0 = just poll)
  ///   kClosed   orderly EOF from the server (no partial frame pending)
  ///   kError    socket/protocol failure (*error says how)
  enum class RecvResult { kFrame, kTimeout, kClosed, kError };
  RecvResult RecvFrame(Frame* out, int timeout_ms, std::string* error);

  /// Half-close: no more requests, but responses still flow back.
  void ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace gqe

#endif  // GQE_NET_CLIENT_H_
