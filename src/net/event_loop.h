#ifndef GQE_NET_EVENT_LOOP_H_
#define GQE_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>

namespace gqe {

/// A minimal single-threaded epoll reactor in the nonblocking-runloop
/// idiom: register a callback per fd, run one epoll_wait at a time from
/// the owner's loop. No timers and no thread safety by design — the
/// serving tier is single-threaded for fork safety (base/subprocess.h),
/// and deadline bookkeeping lives with the connections, which know their
/// own timeouts.
class EventLoop {
 public:
  /// Bitmask passed to Add/Modify; mapped onto EPOLLIN/EPOLLOUT.
  static constexpr uint32_t kReadable = 1;
  static constexpr uint32_t kWritable = 2;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll_create failed (the caller should refuse to serve).
  bool ok() const { return epoll_fd_ >= 0; }

  /// `callback(events)` fires from RunOnce with the kReadable/kWritable
  /// bits that are ready. EPOLLERR/EPOLLHUP surface as kReadable so the
  /// owner discovers the condition from read()'s error return.
  bool Add(int fd, uint32_t events, std::function<void(uint32_t)> callback);

  /// Changes the interest set (e.g. dropping kReadable is how a
  /// connection under write backpressure stops accepting input).
  bool Modify(int fd, uint32_t events);

  /// Deregisters `fd`. Safe to call from inside a callback — dispatch
  /// looks each fd up again and skips ones removed mid-round. Does not
  /// close the fd.
  void Remove(int fd);

  /// One epoll_wait (up to `timeout_ms`, 0 = poll, <0 = block) plus
  /// dispatch. Returns the number of fds dispatched; -1 only on an
  /// unexpected epoll failure. EINTR returns 0 so signal-driven
  /// shutdown flags get checked promptly by the caller.
  int RunOnce(int timeout_ms);

  size_t watched() const { return callbacks_.size(); }

 private:
  int epoll_fd_ = -1;
  std::map<int, std::function<void(uint32_t)>> callbacks_;
};

}  // namespace gqe

#endif  // GQE_NET_EVENT_LOOP_H_
