#include "net/event_loop.h"

#include <errno.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <vector>

namespace gqe {

namespace {

uint32_t ToEpoll(uint32_t events) {
  uint32_t mask = 0;
  if (events & EventLoop::kReadable) mask |= EPOLLIN;
  if (events & EventLoop::kWritable) mask |= EPOLLOUT;
  return mask;
}

uint32_t FromEpoll(uint32_t mask) {
  uint32_t events = 0;
  if (mask & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP)) {
    events |= EventLoop::kReadable;
  }
  if (mask & EPOLLOUT) events |= EventLoop::kWritable;
  return events;
}

}  // namespace

EventLoop::EventLoop() { epoll_fd_ = ::epoll_create1(0); }

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::Add(int fd, uint32_t events,
                    std::function<void(uint32_t)> callback) {
  if (epoll_fd_ < 0 || fd < 0) return false;
  struct epoll_event ev = {};
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  callbacks_[fd] = std::move(callback);
  return true;
}

bool EventLoop::Modify(int fd, uint32_t events) {
  if (epoll_fd_ < 0 || callbacks_.count(fd) == 0) return false;
  struct epoll_event ev = {};
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::Remove(int fd) {
  if (callbacks_.erase(fd) == 0) return;
  if (epoll_fd_ >= 0) {
    // The fd may already be closed (EBADF) — deregistration is then
    // implicit and the error is expected.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

int EventLoop::RunOnce(int timeout_ms) {
  if (epoll_fd_ < 0) return -1;
  struct epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) {
    // EINTR: a signal (SIGTERM drain, SIGCHLD) interrupted the wait —
    // return to the caller so it can check its shutdown flags.
    return errno == EINTR ? 0 : -1;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    // Re-lookup per event: a callback earlier in this round may have
    // removed this fd (e.g. closed a connection the listener accepted).
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    it->second(FromEpoll(events[i].events));
  }
  return n;
}

}  // namespace gqe
