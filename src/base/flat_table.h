#ifndef GQE_BASE_FLAT_TABLE_H_
#define GQE_BASE_FLAT_TABLE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace gqe {

/// Finalizing shuffle applied on top of user hashes so that weak hash
/// functions (identity hashes of dense ids, multiplicative term hashes)
/// still spread across the power-of-two probe space. splitmix64 finalizer.
inline uint64_t HashShuffle(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

namespace flat_internal {

/// Control-byte tags. Full slots store the low 7 bits of the shuffled
/// hash (high bit clear), so a probe can reject almost all non-matching
/// slots from the 1-byte control array alone — and 8 control bytes at a
/// time with the SWAR word match below — without touching slot storage.
inline constexpr uint8_t kEmpty = 0x80;
inline constexpr uint8_t kDeleted = 0x81;  // tombstone
inline constexpr size_t kGroup = 8;        // control bytes probed per step

inline bool IsFull(uint8_t ctrl) { return (ctrl & 0x80) == 0; }

/// SWAR byte match: a word with bit 7 set in every byte of `word` equal
/// to `byte` (the SIMD-friendly probe loop — 8 slots per iteration with
/// plain 64-bit arithmetic, no intrinsics required).
inline uint64_t MatchByte(uint64_t word, uint8_t byte) {
  const uint64_t ones = 0x0101010101010101ull;
  uint64_t x = word ^ (ones * byte);
  return (x - ones) & ~x & 0x8080808080808080ull;
}

/// Open-addressing, linear-probing hash table over `Slot` values with
/// power-of-two capacity, tombstone tags, hash-shuffle and grow-at-half-
/// full (SNIPPETS.md snippets 1–2, Arlib set.h — rewritten around a
/// separate control-byte array so probes stay in one cache line).
///
/// `Ops` supplies hashing and equality and may be stateful (e.g. hold a
/// pointer to a backing columnar store):
///   uint64_t hash(const Probe&) const;     // any probe type
///   uint64_t hash(const Slot&) const;      // used on rehash
///   bool eq(const Slot&, const Probe&) const;
///
/// Iteration order is a deterministic function of the insertion/erase
/// sequence and the hash function — no pointer hashing, no per-process
/// seed — so two runs (at any thread count) that perform the same
/// operations observe the same order. It is NOT insertion order: callers
/// that need a canonical order keep a side vector or sort (the existing
/// sort-before-merge points in chase/ and serialize/ stay load-bearing).
template <typename Slot, typename Ops>
class RawTable {
 public:
  RawTable() : RawTable(Ops()) {}
  explicit RawTable(Ops ops) : ops_(std::move(ops)) {}

  RawTable(const RawTable& other) : ops_(other.ops_) { CopyFrom(other); }
  RawTable(RawTable&& other) noexcept
      : ctrl_(other.ctrl_),
        slots_(other.slots_),
        capacity_(other.capacity_),
        size_(other.size_),
        used_(other.used_),
        rehashes_(other.rehashes_),
        ops_(std::move(other.ops_)) {
    other.ctrl_ = nullptr;
    other.slots_ = nullptr;
    other.capacity_ = other.size_ = other.used_ = 0;
  }
  RawTable& operator=(const RawTable& other) {
    if (this == &other) return *this;
    Destroy();
    ops_ = other.ops_;
    CopyFrom(other);
    return *this;
  }
  RawTable& operator=(RawTable&& other) noexcept {
    if (this == &other) return *this;
    Destroy();
    ctrl_ = other.ctrl_;
    slots_ = other.slots_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    used_ = other.used_;
    rehashes_ = other.rehashes_;
    ops_ = std::move(other.ops_);
    other.ctrl_ = nullptr;
    other.slots_ = nullptr;
    other.capacity_ = other.size_ = other.used_ = 0;
    return *this;
  }
  ~RawTable() { Destroy(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  /// Number of grow/cleanup rehashes performed. Exposed so debug guards
  /// can assert no references are held across a rehash.
  uint64_t rehashes() const { return rehashes_; }

  Ops& ops() { return ops_; }
  const Ops& ops() const { return ops_; }

  void clear() {
    if (ctrl_ == nullptr) return;
    if constexpr (!std::is_trivially_destructible_v<Slot>) {
      for (size_t i = 0; i < capacity_; ++i) {
        if (IsFull(ctrl_[i])) slots_[i].~Slot();
      }
    }
    std::memset(ctrl_, kEmpty, capacity_ + kGroup);
    size_ = 0;
    used_ = 0;
  }

  /// Ensures `n` entries fit without another rehash.
  void reserve(size_t n) {
    size_t target = NormalizeCapacity(n);
    if (target > capacity_) Rehash(target);
  }

  template <typename Probe>
  Slot* find(const Probe& probe) {
    if (ctrl_ == nullptr) return nullptr;
    size_t pos = FindExisting(ShuffledHash(probe), probe);
    return pos == kNpos ? nullptr : slots_ + pos;
  }
  template <typename Probe>
  const Slot* find(const Probe& probe) const {
    return const_cast<RawTable*>(this)->find(probe);
  }
  template <typename Probe>
  bool contains(const Probe& probe) const {
    return find(probe) != nullptr;
  }

  /// Inserts the slot built by `make()` if no slot matches `probe`.
  /// Returns {slot, inserted}.
  template <typename Probe, typename MakeSlot>
  std::pair<Slot*, bool> InsertWith(const Probe& probe, MakeSlot&& make) {
    if (ctrl_ == nullptr) Rehash(kMinCapacity);
    const uint64_t h = ShuffledHash(probe);
    size_t target = kNpos;
    size_t pos = FindOrPrepare(h, probe, &target);
    if (pos != kNpos) return {slots_ + pos, false};
    if (ctrl_[target] == kEmpty && (used_ + 1) * 2 > capacity_) {
      // Grow at half full. Double while genuinely full; rehash in place
      // when tombstones (not live entries) exhausted the empties.
      Rehash(size_ * 4 >= capacity_ ? capacity_ * 2 : capacity_);
      target = FindInsertSlot(h);
    }
    if (ctrl_[target] == kEmpty) ++used_;
    SetCtrl(target, static_cast<uint8_t>(h & 0x7f));
    new (slots_ + target) Slot(make());
    ++size_;
    return {slots_ + target, true};
  }

  template <typename Probe>
  bool erase(const Probe& probe) {
    if (ctrl_ == nullptr) return false;
    size_t pos = FindExisting(ShuffledHash(probe), probe);
    if (pos == kNpos) return false;
    slots_[pos].~Slot();
    SetCtrl(pos, kDeleted);
    --size_;
    return true;
  }

  template <bool Const>
  class Iterator {
   public:
    using TablePtr = std::conditional_t<Const, const RawTable*, RawTable*>;
    using Ref = std::conditional_t<Const, const Slot&, Slot&>;
    Iterator(TablePtr table, size_t pos) : table_(table), pos_(pos) {
      SkipEmpty();
    }
    Ref operator*() const { return table_->slots_[pos_]; }
    auto* operator->() const { return &table_->slots_[pos_]; }
    Iterator& operator++() {
      ++pos_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const Iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const Iterator& o) const { return pos_ != o.pos_; }

   private:
    void SkipEmpty() {
      while (pos_ < table_->capacity_ && !IsFull(table_->ctrl_[pos_])) ++pos_;
    }
    TablePtr table_;
    size_t pos_;
  };

  Iterator<false> begin() { return Iterator<false>(this, 0); }
  Iterator<false> end() { return Iterator<false>(this, capacity_); }
  Iterator<true> begin() const { return Iterator<true>(this, 0); }
  Iterator<true> end() const { return Iterator<true>(this, capacity_); }

 private:
  static constexpr size_t kNpos = ~static_cast<size_t>(0);
  static constexpr size_t kMinCapacity = 16;

  static size_t NormalizeCapacity(size_t n) {
    size_t cap = kMinCapacity;
    while (cap < 2 * n) cap <<= 1;  // keep load factor under 1/2
    return cap;
  }

  template <typename Probe>
  uint64_t ShuffledHash(const Probe& probe) const {
    return HashShuffle(static_cast<uint64_t>(ops_.hash(probe)));
  }

  uint64_t LoadGroup(size_t pos) const {
    uint64_t word;
    std::memcpy(&word, ctrl_ + pos, sizeof(word));
    return word;
  }

  void SetCtrl(size_t pos, uint8_t value) {
    ctrl_[pos] = value;
    // The mirrored tail lets group loads near the end of the array wrap
    // without masking every byte.
    if (pos < kGroup) ctrl_[capacity_ + pos] = value;
  }

  /// Index of the slot matching `probe`, or kNpos.
  template <typename Probe>
  size_t FindExisting(uint64_t h, const Probe& probe) const {
    const size_t mask = capacity_ - 1;
    const uint8_t h2 = static_cast<uint8_t>(h & 0x7f);
    size_t pos = (h >> 7) & mask;
    for (size_t step = 0; step <= mask; step += kGroup) {
      const uint64_t word = LoadGroup(pos);
      uint64_t match = MatchByte(word, h2);
      while (match != 0) {
        const size_t bit = CountTrailingZeros(match) >> 3;
        const size_t slot = (pos + bit) & mask;
        if (ops_.eq(slots_[slot], probe)) return slot;
        match &= match - 1;
      }
      if (MatchByte(word, kEmpty) != 0) return kNpos;
      pos = (pos + kGroup) & mask;
    }
    return kNpos;
  }

  /// Like FindExisting but also reports the slot a new entry should take
  /// (first tombstone on the probe path, else the first empty).
  template <typename Probe>
  size_t FindOrPrepare(uint64_t h, const Probe& probe, size_t* target) const {
    const size_t mask = capacity_ - 1;
    const uint8_t h2 = static_cast<uint8_t>(h & 0x7f);
    size_t pos = (h >> 7) & mask;
    size_t reuse = kNpos;
    for (size_t step = 0; step <= mask; step += kGroup) {
      const uint64_t word = LoadGroup(pos);
      uint64_t match = MatchByte(word, h2);
      while (match != 0) {
        const size_t bit = CountTrailingZeros(match) >> 3;
        const size_t slot = (pos + bit) & mask;
        if (ops_.eq(slots_[slot], probe)) return slot;
        match &= match - 1;
      }
      const uint64_t empty = MatchByte(word, kEmpty);
      if (reuse == kNpos) {
        uint64_t dead = MatchByte(word, kDeleted);
        // Never reuse a tombstone past the first empty on the probe path:
        // a key stored there would be unreachable (lookups stop at the
        // empty). Group bytes are probe-ordered (little-endian load), so
        // masking to bits below the first empty keeps only valid reuses.
        if (empty != 0) dead &= empty - 1;
        if (dead != 0) reuse = (pos + (CountTrailingZeros(dead) >> 3)) & mask;
      }
      if (empty != 0) {
        *target = reuse != kNpos
                      ? reuse
                      : (pos + (CountTrailingZeros(empty) >> 3)) & mask;
        return kNpos;
      }
      pos = (pos + kGroup) & mask;
    }
    assert(reuse != kNpos && "flat table probe wrapped with no empty slot");
    *target = reuse;
    return kNpos;
  }

  /// First empty slot for `h` in a table known not to contain the key
  /// (used right after a rehash, which clears all tombstones).
  size_t FindInsertSlot(uint64_t h) const {
    const size_t mask = capacity_ - 1;
    size_t pos = (h >> 7) & mask;
    for (;;) {
      const uint64_t word = LoadGroup(pos);
      const uint64_t empty = MatchByte(word, kEmpty);
      if (empty != 0) return (pos + (CountTrailingZeros(empty) >> 3)) & mask;
      pos = (pos + kGroup) & mask;
    }
  }

  static size_t CountTrailingZeros(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<size_t>(__builtin_ctzll(x));
#else
    size_t n = 0;
    while ((x & 1) == 0) {
      x >>= 1;
      ++n;
    }
    return n;
#endif
  }

  void Allocate(size_t capacity) {
    capacity_ = capacity;
    ctrl_ = static_cast<uint8_t*>(::operator new(capacity + kGroup));
    std::memset(ctrl_, kEmpty, capacity + kGroup);
    slots_ = static_cast<Slot*>(::operator new(
        capacity * sizeof(Slot), std::align_val_t(alignof(Slot))));
  }

  void Free() {
    ::operator delete(ctrl_);
    ::operator delete(slots_, std::align_val_t(alignof(Slot)));
    ctrl_ = nullptr;
    slots_ = nullptr;
  }

  void Destroy() {
    if (ctrl_ == nullptr) return;
    if constexpr (!std::is_trivially_destructible_v<Slot>) {
      for (size_t i = 0; i < capacity_; ++i) {
        if (IsFull(ctrl_[i])) slots_[i].~Slot();
      }
    }
    Free();
    capacity_ = size_ = used_ = 0;
  }

  /// Byte-exact replication (same capacity, same slot positions), so a
  /// copied table iterates in the same order as its source.
  void CopyFrom(const RawTable& other) {
    if (other.ctrl_ == nullptr) {
      ctrl_ = nullptr;
      slots_ = nullptr;
      capacity_ = size_ = used_ = 0;
      rehashes_ = other.rehashes_;
      return;
    }
    Allocate(other.capacity_);
    std::memcpy(ctrl_, other.ctrl_, other.capacity_ + kGroup);
    for (size_t i = 0; i < other.capacity_; ++i) {
      if (IsFull(other.ctrl_[i])) new (slots_ + i) Slot(other.slots_[i]);
    }
    size_ = other.size_;
    used_ = other.used_;
    rehashes_ = other.rehashes_;
  }

  void Rehash(size_t new_capacity) {
    if (new_capacity < kMinCapacity) new_capacity = kMinCapacity;
    uint8_t* old_ctrl = ctrl_;
    Slot* old_slots = slots_;
    const size_t old_capacity = capacity_;
    Allocate(new_capacity);
    used_ = size_;
    ++rehashes_;
    if (old_ctrl == nullptr) return;
    for (size_t i = 0; i < old_capacity; ++i) {
      if (!IsFull(old_ctrl[i])) continue;
      const uint64_t h = ShuffledHash(old_slots[i]);
      const size_t pos = FindInsertSlot(h);
      SetCtrl(pos, static_cast<uint8_t>(h & 0x7f));
      new (slots_ + pos) Slot(std::move(old_slots[i]));
      old_slots[i].~Slot();
    }
    ::operator delete(old_ctrl);
    ::operator delete(old_slots, std::align_val_t(alignof(Slot)));
  }

  uint8_t* ctrl_ = nullptr;
  Slot* slots_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;   // full slots
  size_t used_ = 0;   // full + tombstoned slots
  uint64_t rehashes_ = 0;
  Ops ops_;
};

template <typename Key, typename Hash, typename Eq>
struct SetOps {
  Hash hasher;
  Eq equals;
  template <typename Probe>
  uint64_t hash(const Probe& probe) const {
    return static_cast<uint64_t>(hasher(probe));
  }
  template <typename Probe>
  bool eq(const Key& slot, const Probe& probe) const {
    return equals(slot, probe);
  }
};

template <typename Key, typename Value, typename Hash, typename Eq>
struct MapOps {
  Hash hasher;
  Eq equals;
  using Slot = std::pair<Key, Value>;
  uint64_t hash(const Slot& slot) const {
    return static_cast<uint64_t>(hasher(slot.first));
  }
  template <typename Probe>
  uint64_t hash(const Probe& probe) const {
    return static_cast<uint64_t>(hasher(probe));
  }
  template <typename Probe>
  bool eq(const Slot& slot, const Probe& probe) const {
    return equals(slot.first, probe);
  }
};

}  // namespace flat_internal

/// Drop-in open-addressing replacement for the std::unordered_set uses on
/// the hot paths. Heterogeneous lookup works out of the box: any probe
/// type `Hash`/`Eq` accept is a valid argument to find/contains/erase.
template <typename Key, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class FlatSet {
  using Ops = flat_internal::SetOps<Key, Hash, Eq>;

 public:
  FlatSet() = default;
  explicit FlatSet(size_t capacity_hint) { table_.reserve(capacity_hint); }

  std::pair<Key*, bool> insert(const Key& key) {
    return table_.InsertWith(key, [&]() -> const Key& { return key; });
  }
  std::pair<Key*, bool> insert(Key&& key) {
    return table_.InsertWith(key, [&]() -> Key&& { return std::move(key); });
  }

  template <typename Probe>
  const Key* find(const Probe& probe) const {
    return table_.find(probe);
  }
  template <typename Probe>
  bool contains(const Probe& probe) const {
    return table_.contains(probe);
  }
  template <typename Probe>
  size_t count(const Probe& probe) const {
    return table_.contains(probe) ? 1 : 0;
  }
  template <typename Probe>
  bool erase(const Probe& probe) {
    return table_.erase(probe);
  }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t capacity() const { return table_.capacity(); }
  uint64_t rehashes() const { return table_.rehashes(); }
  void clear() { table_.clear(); }
  void reserve(size_t n) { table_.reserve(n); }

  auto begin() const { return table_.begin(); }
  auto end() const { return table_.end(); }

 private:
  flat_internal::RawTable<Key, Ops> table_;
};

/// Open-addressing map counterpart. Iteration yields std::pair<Key,
/// Value>& entries (first/second, as with the std maps it replaces).
template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class FlatMap {
  using Ops = flat_internal::MapOps<Key, Value, Hash, Eq>;
  using Slot = std::pair<Key, Value>;

 public:
  FlatMap() = default;
  explicit FlatMap(size_t capacity_hint) { table_.reserve(capacity_hint); }

  Value& operator[](const Key& key) {
    auto [slot, inserted] =
        table_.InsertWith(key, [&] { return Slot(key, Value()); });
    return slot->second;
  }

  std::pair<Slot*, bool> try_emplace(const Key& key, Value value) {
    return table_.InsertWith(
        key, [&] { return Slot(key, std::move(value)); });
  }

  template <typename Probe>
  Slot* find(const Probe& probe) {
    return table_.find(probe);
  }
  template <typename Probe>
  const Slot* find(const Probe& probe) const {
    return table_.find(probe);
  }
  template <typename Probe>
  Value* value(const Probe& probe) {
    Slot* slot = table_.find(probe);
    return slot == nullptr ? nullptr : &slot->second;
  }
  template <typename Probe>
  const Value* value(const Probe& probe) const {
    const Slot* slot = table_.find(probe);
    return slot == nullptr ? nullptr : &slot->second;
  }
  template <typename Probe>
  bool contains(const Probe& probe) const {
    return table_.contains(probe);
  }
  template <typename Probe>
  bool erase(const Probe& probe) {
    return table_.erase(probe);
  }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t capacity() const { return table_.capacity(); }
  uint64_t rehashes() const { return table_.rehashes(); }
  void clear() { table_.clear(); }
  void reserve(size_t n) { table_.reserve(n); }

  auto begin() { return table_.begin(); }
  auto end() { return table_.end(); }
  auto begin() const { return table_.begin(); }
  auto end() const { return table_.end(); }

 private:
  flat_internal::RawTable<Slot, Ops> table_;
};

}  // namespace gqe

#endif  // GQE_BASE_FLAT_TABLE_H_
