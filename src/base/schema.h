#ifndef GQE_BASE_SCHEMA_H_
#define GQE_BASE_SCHEMA_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gqe {

/// Dense id of a predicate (relation symbol). Predicates are interned
/// process-wide: a (name) maps to one id, and the arity is fixed at first
/// registration.
using PredicateId = uint32_t;

/// Registry of predicate names and arities. A thin wrapper over the global
/// interner; see Schema for per-problem predicate sets.
namespace predicates {

/// Interns predicate `name` with the given `arity`. If the name is already
/// registered with a different arity, the program aborts (names identify
/// relations uniquely, as in the paper).
PredicateId Intern(std::string_view name, int arity);

/// Returns the id for `name` if registered, or -1 cast to PredicateId.
PredicateId Lookup(std::string_view name);

/// Returns the arity of a registered predicate.
int Arity(PredicateId id);

/// Returns the name of a registered predicate.
std::string_view Name(PredicateId id);

}  // namespace predicates

/// A schema S: a finite set of predicates (paper, Section 2). Used to
/// express data schemas of OMQs and to restrict databases.
class Schema {
 public:
  Schema() = default;

  /// Adds a predicate to the schema (registering it if new).
  PredicateId Add(std::string_view name, int arity);

  /// Adds an already-registered predicate id.
  void Add(PredicateId id);

  bool Contains(PredicateId id) const;
  const std::vector<PredicateId>& predicate_ids() const { return ids_; }
  size_t size() const { return ids_.size(); }

  /// ar(S): the maximum arity over the schema's predicates (0 if empty).
  int MaxArity() const;

  std::string ToString() const;

 private:
  std::vector<PredicateId> ids_;  // sorted, unique
};

std::ostream& operator<<(std::ostream& os, const Schema& schema);

}  // namespace gqe

#endif  // GQE_BASE_SCHEMA_H_
