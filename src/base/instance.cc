#include "base/instance.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace gqe {

namespace {
const std::vector<uint32_t>& EmptyIndexVector() {
  static const std::vector<uint32_t>* const kEmpty =
      new std::vector<uint32_t>();
  return *kEmpty;
}
}  // namespace

bool Instance::Insert(const Atom& atom) {
  assert(atom.IsGround() && "instances contain only ground atoms");
  auto [it, inserted] = atom_set_.insert(atom);
  if (!inserted) return false;
  const uint32_t index = static_cast<uint32_t>(atoms_.size());
  atoms_.push_back(atom);
  by_predicate_[atom.predicate()].push_back(index);
  for (int pos = 0; pos < atom.arity(); ++pos) {
    by_position_[MakePosKey(atom.predicate(), pos, atom.args()[pos])]
        .push_back(index);
    Term t = atom.args()[pos];
    if (domain_set_.insert(t).second) domain_.push_back(t);
    std::vector<uint32_t>& mentions = by_term_[t];
    if (mentions.empty() || mentions.back() != index) {
      mentions.push_back(index);
    }
  }
  return true;
}

void Instance::InsertAll(const Instance& other) {
  for (const Atom& atom : other.atoms()) Insert(atom);
}

void Instance::InsertAll(const std::vector<Atom>& atoms) {
  for (const Atom& atom : atoms) Insert(atom);
}

bool Instance::Contains(const Atom& atom) const {
  return atom_set_.count(atom) > 0;
}

const std::vector<uint32_t>& Instance::FactsWithPredicate(
    PredicateId pred) const {
  auto it = by_predicate_.find(pred);
  if (it == by_predicate_.end()) return EmptyIndexVector();
  return it->second;
}

const std::vector<uint32_t>& Instance::FactsWith(PredicateId pred,
                                                 int position,
                                                 Term term) const {
  auto it = by_position_.find(MakePosKey(pred, position, term));
  if (it == by_position_.end()) return EmptyIndexVector();
  return it->second;
}

Instance Instance::Restrict(const std::vector<Term>& keep) const {
  std::unordered_set<Term> keep_set(keep.begin(), keep.end());
  Instance out;
  for (const Atom& atom : atoms_) {
    bool all = true;
    for (Term t : atom.args()) {
      if (keep_set.count(t) == 0) {
        all = false;
        break;
      }
    }
    if (all) out.Insert(atom);
  }
  return out;
}

Schema Instance::InducedSchema() const {
  Schema schema;
  for (const auto& [pred, _] : by_predicate_) schema.Add(pred);
  return schema;
}

const std::vector<uint32_t>& Instance::FactsMentioning(Term t) const {
  auto it = by_term_.find(t);
  if (it == by_term_.end()) return EmptyIndexVector();
  return it->second;
}

std::vector<Atom> Instance::AtomsOver(const std::vector<Term>& elements) const {
  std::unordered_set<Term> element_set(elements.begin(), elements.end());
  std::unordered_set<uint32_t> seen;
  std::vector<Atom> out;
  // 0-ary facts have empty domains and belong in every restriction.
  for (const auto& [pred, indices] : by_predicate_) {
    if (predicates::Arity(pred) == 0) {
      for (uint32_t index : indices) out.push_back(atoms_[index]);
    }
  }
  for (Term e : elements) {
    for (uint32_t index : FactsMentioning(e)) {
      if (!seen.insert(index).second) continue;
      bool inside = true;
      for (Term t : atoms_[index].args()) {
        if (element_set.count(t) == 0) {
          inside = false;
          break;
        }
      }
      if (inside) out.push_back(atoms_[index]);
    }
  }
  return out;
}

bool Instance::SetEquals(const Instance& other) const {
  return size() == other.size() && SubsetOf(other);
}

bool Instance::SubsetOf(const Instance& other) const {
  for (const Atom& atom : atoms_) {
    if (!other.Contains(atom)) return false;
  }
  return true;
}

std::string Instance::ToString() const {
  std::ostringstream out;
  out << "{";
  std::vector<Atom> sorted = atoms_;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out << ", ";
    out << sorted[i];
  }
  out << "}";
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Instance& instance) {
  return os << instance.ToString();
}

}  // namespace gqe
