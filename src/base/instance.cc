#include "base/instance.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace gqe {

namespace {
const std::vector<uint32_t>& EmptyIndexVector() {
  static const std::vector<uint32_t>* const kEmpty =
      new std::vector<uint32_t>();
  return *kEmpty;
}
}  // namespace

bool Instance::Insert(const Atom& atom) {
  assert(atom.IsGround() && "instances contain only ground atoms");
  const uint32_t arity = static_cast<uint32_t>(atom.arity());
  auto [index, fresh] =
      store_.InsertUnique(atom.predicate(), atom.args().data(), arity);
  if (!fresh) return false;
  assert(index == atoms_.size() && "row store and columnar store diverged");
  atoms_.push_back(atom);
  if (atom.predicate() >= by_predicate_.size()) {
    by_predicate_.resize(atom.predicate() + 1);
  }
  std::vector<uint32_t>& preds = by_predicate_[atom.predicate()];
  if (preds.empty()) pred_order_.push_back(atom.predicate());
  preds.push_back(index);
  for (int pos = 0; pos < atom.arity(); ++pos) {
    Term t = atom.args()[pos];
    by_position_[MakePosKey(atom.predicate(), pos, t)].push_back(index);
    if (domain_set_.insert(t).second) domain_.push_back(t);
    std::vector<uint32_t>& mentions = by_term_[t];
    if (mentions.empty() || mentions.back() != index) {
      mentions.push_back(index);
    }
  }
  return true;
}

void Instance::InsertAll(const Instance& other) {
  Reserve(size() + other.size(), store_.term_column().size() +
                                     other.store_.term_column().size());
  for (const Atom& atom : other.atoms()) Insert(atom);
}

void Instance::InsertAll(const std::vector<Atom>& atoms) {
  for (const Atom& atom : atoms) Insert(atom);
}

bool Instance::Contains(const Atom& atom) const {
  return store_.Contains(atom.predicate(), atom.args().data(),
                         static_cast<uint32_t>(atom.arity()));
}

int64_t Instance::Find(const Atom& atom) const {
  return store_.Find(atom.predicate(), atom.args().data(),
                     static_cast<uint32_t>(atom.arity()));
}

void Instance::Reserve(size_t facts, size_t terms) {
  atoms_.reserve(facts);
  store_.Reserve(facts, terms);
  domain_set_.reserve(domain_.size() + terms);
}

const std::vector<uint32_t>& Instance::FactsWithPredicate(
    PredicateId pred) const {
  if (pred >= by_predicate_.size()) return EmptyIndexVector();
  return by_predicate_[pred];
}

const std::vector<uint32_t>& Instance::FactsWith(PredicateId pred,
                                                 int position,
                                                 Term term) const {
  const std::vector<uint32_t>* postings =
      by_position_.value(MakePosKey(pred, position, term));
  return postings == nullptr ? EmptyIndexVector() : *postings;
}

Instance Instance::Restrict(const std::vector<Term>& keep) const {
  FlatSet<Term> keep_set(keep.size());
  for (Term t : keep) keep_set.insert(t);
  Instance out;
  for (uint32_t i = 0; i < atoms_.size(); ++i) {
    bool all = true;
    for (Term t : store_.args(i)) {
      if (!keep_set.contains(t)) {
        all = false;
        break;
      }
    }
    if (all) out.Insert(atoms_[i]);
  }
  return out;
}

Schema Instance::InducedSchema() const {
  Schema schema;
  for (PredicateId pred : pred_order_) schema.Add(pred);
  return schema;
}

const std::vector<uint32_t>& Instance::FactsMentioning(Term t) const {
  const std::vector<uint32_t>* mentions = by_term_.value(t);
  return mentions == nullptr ? EmptyIndexVector() : *mentions;
}

std::vector<Atom> Instance::AtomsOver(const std::vector<Term>& elements) const {
  FlatSet<Term> element_set(elements.size());
  for (Term t : elements) element_set.insert(t);
  FlatSet<uint32_t> seen;
  std::vector<Atom> out;
  // 0-ary facts have empty domains and belong in every restriction.
  for (PredicateId pred : pred_order_) {
    if (predicates::Arity(pred) == 0) {
      for (uint32_t index : by_predicate_[pred]) out.push_back(atoms_[index]);
    }
  }
  for (Term e : elements) {
    for (uint32_t index : FactsMentioning(e)) {
      if (!seen.insert(index).second) continue;
      bool inside = true;
      for (Term t : store_.args(index)) {
        if (!element_set.contains(t)) {
          inside = false;
          break;
        }
      }
      if (inside) out.push_back(atoms_[index]);
    }
  }
  return out;
}

bool Instance::SetEquals(const Instance& other) const {
  return size() == other.size() && SubsetOf(other);
}

bool Instance::SubsetOf(const Instance& other) const {
  for (const Atom& atom : atoms_) {
    if (!other.Contains(atom)) return false;
  }
  return true;
}

uint64_t Instance::IndexRehashes() const {
  return store_.index_rehashes() + by_position_.rehashes() +
         domain_set_.rehashes() + by_term_.rehashes();
}

std::string Instance::ToString() const {
  std::ostringstream out;
  out << "{";
  std::vector<Atom> sorted = atoms_;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out << ", ";
    out << sorted[i];
  }
  out << "}";
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Instance& instance) {
  return os << instance.ToString();
}

}  // namespace gqe
