#ifndef GQE_BASE_THREAD_POOL_H_
#define GQE_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gqe {

/// A reusable fixed-size pool of worker threads for data-parallel loops
/// (chase trigger discovery, homomorphism shard search). Workers idle
/// between jobs; ParallelFor blocks until every index has been processed.
/// The calling thread participates in each loop, so a pool of size 1 runs
/// everything inline with no cross-thread synchronization — that is the
/// `threads = 1` "today's code path" guarantee of ChaseOptions/HomOptions.
class ThreadPool {
 public:
  /// Resolves a user-facing thread-count option: n >= 1 means n threads,
  /// 0 means hardware concurrency (at least 1), negative clamps to 1.
  static size_t ResolveThreads(int requested);

  /// Creates a pool running loops on `threads` threads total: the caller
  /// plus `threads - 1` background workers.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n), distributing indices dynamically
  /// across the pool (atomic work stealing, so uneven units balance).
  /// Blocks until all calls return. fn must be safe to call concurrently
  /// from different threads; with threads() == 1 it runs inline in index
  /// order.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  /// Drains indices of the current job on the calling thread.
  void DrainIndices();

  size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const std::function<void(size_t)>* job_fn_ = nullptr;
  size_t job_size_ = 0;
  std::atomic<size_t> next_index_{0};
  size_t not_started_ = 0;  // workers that have not yet joined this job
  size_t active_ = 0;       // workers currently inside the job
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace gqe

#endif  // GQE_BASE_THREAD_POOL_H_
