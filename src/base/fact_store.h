#ifndef GQE_BASE_FACT_STORE_H_
#define GQE_BASE_FACT_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "base/flat_table.h"
#include "base/schema.h"
#include "base/term.h"

namespace gqe {

/// Columnar (struct-of-arrays) fact storage: predicates, argument
/// offsets and a single flat Term column, plus the cached 64-bit content
/// hash of every fact and an open-addressing dedup index over the fact
/// ids. The saturation / join loops scan `args(i)` spans straight out of
/// one contiguous Term array instead of chasing one heap vector per Atom,
/// and duplicate detection probes the flat index with the cached hashes —
/// no Atom is materialized on either path.
///
/// Fact ids are dense, assigned in insertion order, and stable forever
/// (the store is append-only between clears). Pointers *into* the Term
/// column are only stable while no fact is appended: appends may grow the
/// column. Hold ids, not spans, across inserts.
class FactStore {
 public:
  FactStore();
  FactStore(const FactStore& other);
  FactStore(FactStore&& other) noexcept;
  FactStore& operator=(const FactStore& other);
  FactStore& operator=(FactStore&& other) noexcept;

  /// Content hash of a fact (predicate + argument bits), the key of the
  /// dedup index. Deterministic across runs and processes modulo the
  /// interner's id assignment.
  static uint64_t HashFact(PredicateId pred, const Term* args, size_t arity);

  /// Appends the fact if it is not already present. Returns {id, fresh}.
  std::pair<uint32_t, bool> InsertUnique(PredicateId pred, const Term* args,
                                         uint32_t arity);

  /// Id of the fact, or -1 if absent.
  int64_t Find(PredicateId pred, const Term* args, uint32_t arity) const;

  bool Contains(PredicateId pred, const Term* args, uint32_t arity) const {
    return Find(pred, args, arity) >= 0;
  }

  size_t size() const { return preds_.size(); }
  bool empty() const { return preds_.empty(); }

  PredicateId predicate(uint32_t id) const { return preds_[id]; }
  uint32_t arity(uint32_t id) const { return offsets_[id + 1] - offsets_[id]; }
  std::span<const Term> args(uint32_t id) const {
    return {args_.data() + offsets_[id], offsets_[id + 1] - offsets_[id]};
  }
  uint64_t hash(uint32_t id) const { return hashes_[id]; }

  /// The whole Term column, for sequential cache-friendly sweeps.
  const std::vector<Term>& term_column() const { return args_; }

  /// Pre-sizes the columns and the dedup index (e.g. from a workload
  /// fingerprint or a checkpoint's fact count) so the build pays no
  /// intermediate rehashes.
  void Reserve(size_t facts, size_t terms);

  void clear();

  /// Rehash count of the dedup index (debug guard support).
  uint64_t index_rehashes() const { return index_.rehashes(); }

 private:
  /// Heterogeneous probe for the dedup index: a fact not yet stored.
  struct FactRef {
    PredicateId pred;
    const Term* args;
    uint32_t arity;
    uint64_t hash;
  };

  struct IndexOps {
    const FactStore* store = nullptr;
    uint64_t hash(uint32_t id) const { return store->hashes_[id]; }
    uint64_t hash(const FactRef& ref) const { return ref.hash; }
    bool eq(uint32_t id, const FactRef& ref) const {
      return store->EqualsRef(id, ref);
    }
    bool eq(uint32_t a, uint32_t b) const { return a == b; }
  };

  bool EqualsRef(uint32_t id, const FactRef& ref) const;

  std::vector<PredicateId> preds_;
  std::vector<uint32_t> offsets_;  // size()+1 entries; offsets_[0] == 0
  std::vector<Term> args_;
  std::vector<uint64_t> hashes_;
  flat_internal::RawTable<uint32_t, IndexOps> index_;
};

}  // namespace gqe

#endif  // GQE_BASE_FACT_STORE_H_
