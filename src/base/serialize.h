#ifndef GQE_BASE_SERIALIZE_H_
#define GQE_BASE_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/instance.h"

namespace gqe {

/// Why a snapshot could not be written or read back. Snapshots guard
/// long chase/saturation runs against crashes, so a damaged file must be
/// *diagnosed* — never trusted (a silently wrong instance) and never a
/// crash. The checksummed envelope below turns truncation and bit flips
/// into kTruncated / kChecksumMismatch, which recovery code treats as
/// "fall back to the previous good generation".
enum class SnapshotError : int {
  kNone = 0,
  /// The file could not be opened, read, written or renamed.
  kIoError = 1,
  /// No snapshot exists at the given location.
  kNotFound = 2,
  /// The file does not start with the snapshot magic.
  kBadMagic = 3,
  /// The file is shorter than its header claims (e.g. a crash cut the
  /// write short before the atomic rename, or the tail was lost).
  kTruncated = 4,
  /// The payload bytes do not match the stored CRC-32 (bit rot, a torn
  /// write, or deliberate corruption).
  kChecksumMismatch = 5,
  /// The snapshot was written by an incompatible format version.
  kVersionMismatch = 6,
  /// The checksum passed but the payload does not decode (wrong kind,
  /// out-of-range ids, impossible lengths).
  kFormatError = 7,
  /// The snapshot's interned names conflict with names already interned
  /// by this process, so its term/predicate ids cannot be honoured.
  kInternerConflict = 8,
};

const char* SnapshotErrorName(SnapshotError error);

/// Status of a snapshot operation: an error code plus a human-readable
/// message naming the offending file / field.
struct SnapshotStatus {
  SnapshotError error = SnapshotError::kNone;
  std::string message;

  bool ok() const { return error == SnapshotError::kNone; }

  static SnapshotStatus Ok() { return SnapshotStatus{}; }
  static SnapshotStatus Fail(SnapshotError error, std::string message) {
    return SnapshotStatus{error, std::move(message)};
  }
};

/// Appends little-endian primitives to a growing byte buffer. All
/// snapshot payloads are produced through this writer so the encoding is
/// deterministic: the same state serializes to the same bytes.
class BinaryWriter {
 public:
  void WriteU8(uint8_t value);
  void WriteU16(uint16_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI32(int32_t value) { WriteU32(static_cast<uint32_t>(value)); }
  void WriteBool(bool value) { WriteU8(value ? 1 : 0); }
  /// Length-prefixed (u64) byte string.
  void WriteString(std::string_view value);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over a byte buffer. Every read reports failure
/// instead of walking off the end; after the first failed read the
/// reader stays failed (sticky), so decoders can check ok() once at the
/// end of a struct.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* out);
  bool ReadU16(uint16_t* out);
  bool ReadU32(uint32_t* out);
  bool ReadU64(uint64_t* out);
  bool ReadI32(int32_t* out);
  bool ReadBool(bool* out);
  bool ReadString(std::string* out);

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// CRC-32 (IEEE 802.3 polynomial) of `data`. Used both for snapshot
/// integrity and as a cheap deterministic fingerprint of workloads.
uint32_t Crc32(std::string_view data);

/// Snapshot kinds carried in the envelope header, so a chase checkpoint
/// can never be mistaken for a portion snapshot.
constexpr uint16_t kSnapshotKindChase = 1;
constexpr uint16_t kSnapshotKindChaseTree = 2;
constexpr uint16_t kSnapshotKindInstance = 3;
/// Result blob a serve worker writes to its result pipe (serve/worker.h).
constexpr uint16_t kSnapshotKindWorkerResult = 4;
/// Per-round candidate exchange a shard worker ships to the coordinator
/// (shard/exchange.h). The envelope CRC is the corruption detector the
/// shard fault protocol relies on: a bit-flipped exchange is a
/// recoverable shard fault, never a wrong answer.
constexpr uint16_t kSnapshotKindShardExchange = 5;
/// One record of the serving tier's write-ahead request journal
/// (serve/journal.h). The CRC envelope is what makes a torn tail or a
/// bit-flipped record a *detected* end of journal on recovery, never a
/// fabricated request or result.
constexpr uint16_t kSnapshotKindJournalRecord = 6;
/// Long-lived storage-shard worker protocol (shard/storage_shard.h): a
/// coordinator command frame (seed / delta / rebuild / discover) and the
/// worker's reply (ack with fragment manifest, or candidate groups). Both
/// travel length-prefixed over pipes; the envelope CRC turns any torn or
/// bit-flipped frame into a recoverable shard fault.
constexpr uint16_t kSnapshotKindStorageCommand = 7;
constexpr uint16_t kSnapshotKindStorageReply = 8;
/// A storage shard's per-round fragment checkpoint (its owned slice of
/// the instance plus the round frontier), written tmp+fsync+rename at
/// every round boundary.
constexpr uint16_t kSnapshotKindStorageFragment = 9;
/// The coordinator's retained per-round exchange log (one round's delta
/// facts), fsynced before any shard's round barrier is acked so a
/// respawned shard can always rebuild checkpoint + log back to the
/// current boundary.
constexpr uint16_t kSnapshotKindStorageLog = 10;

/// Current snapshot format version (bumped on incompatible changes).
/// v2: chase snapshots carry the per-trigger null-draw log backing
/// derivation witnesses (verify/witness.h); worker results carry the
/// serialized evaluation witness.
constexpr uint16_t kSnapshotVersion = 2;

/// Wraps a payload in the versioned, checksummed snapshot envelope:
/// magic | kind | version | payload size | CRC-32(payload) | payload.
std::string WrapSnapshot(uint16_t kind, std::string_view payload);

/// Validates the envelope of `bytes` and exposes the payload. Rejects a
/// wrong magic, wrong kind, newer version, truncated tail or checksum
/// mismatch with the corresponding SnapshotError; `payload` points into
/// `bytes` and is only set on success.
SnapshotStatus UnwrapSnapshot(std::string_view bytes, uint16_t kind,
                              std::string_view* payload);

/// Reads a whole file into `out`. Missing files report kNotFound.
SnapshotStatus ReadFileBytes(const std::string& path, std::string* out);

/// Writes `bytes` to `path` crash-safely: the data goes to a temporary
/// file in the same directory, is flushed to disk (fsync), is atomically
/// renamed over `path`, and the containing directory is then fsynced so
/// the rename itself survives power loss (file fsync alone only covers
/// process death — the new directory entry lives in the directory inode).
/// A reader never observes a partially written file — a crash leaves
/// either the old snapshot or the new one.
SnapshotStatus WriteFileAtomic(const std::string& path,
                               std::string_view bytes);

/// fsyncs the directory containing `path` (or `path` itself when it is a
/// directory), making previously renamed/created entries durable.
SnapshotStatus FsyncParentDir(const std::string& path);

/// Test-only write fault injection for WriteFileAtomic: after
/// `fail_after_bytes` have been written the next write fails with `error`
/// (e.g. ENOSPC), optionally after a short write of the remaining room.
/// Pass nullptr to clear. The injector pointer must outlive its
/// installation; not thread-safe (tests only).
struct WriteFaultInjectorForTest {
  size_t fail_after_bytes = 0;
  int error = 0;  // errno to report, e.g. ENOSPC
  size_t written = 0;  // bytes the faulty "device" accepted so far
};
void SetWriteFaultInjectorForTest(WriteFaultInjectorForTest* injector);

/// Serializes the global interner (constant / variable / predicate pools,
/// predicate arities, fresh-name counter). A snapshot embeds this so its
/// 32-bit term and predicate ids stay meaningful across processes.
void EncodeInterner(BinaryWriter* writer);

/// Replays an interner section against the global interner: every stored
/// name must either intern to exactly its stored id (fresh process or
/// identical parse history) or already hold it. Any conflict — including
/// a predicate re-registered with a different arity — is rejected with
/// kInternerConflict, never an abort.
SnapshotStatus DecodeInterner(BinaryReader* reader);

/// Serializes a ground-atom sequence in order.
void EncodeAtomVector(const std::vector<Atom>& atoms, BinaryWriter* writer);

/// Decodes a ground-atom sequence (appending to `out`). Validates
/// predicate ids, arities and term kinds against the (already decoded)
/// interner.
SnapshotStatus DecodeAtomVector(BinaryReader* reader,
                                std::vector<Atom>* out);

/// Serializes an instance as its fact sequence in insertion order, so
/// decoding rebuilds a bit-identical instance (same atoms, same order,
/// same labelled-null ids, same indexes).
void EncodeInstance(const Instance& instance, BinaryWriter* writer);

/// Decodes a fact sequence into `out` (appending). Validates predicate
/// ids, arities and term kinds against the (already decoded) interner.
SnapshotStatus DecodeInstance(BinaryReader* reader, Instance* out);

}  // namespace gqe

#endif  // GQE_BASE_SERIALIZE_H_
