#ifndef GQE_BASE_ARENA_H_
#define GQE_BASE_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace gqe {

/// A bump-pointer arena: allocations are pointer increments into large
/// blocks, individual frees don't exist, and the whole arena is released
/// (or recycled with Reset) in O(1) amortized work at teardown. Used for
/// the short-lived, high-volume allocations on the chase hot path —
/// trigger keys, scratch term runs — where per-node malloc/free and
/// destructor walks dominated the old std container profile.
///
/// Not thread-safe; each engine run owns its arenas.
class Arena {
 public:
  /// `block_bytes` is the payload size of the first block; subsequent
  /// blocks double (geometrically) up to a cap so tiny arenas stay tiny.
  explicit Arena(size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;

  /// Returns `bytes` of storage aligned to `align` (any power of two,
  /// including over-aligned requests beyond alignof(max_align_t)).
  /// Allocations larger than a block get a dedicated block and do not
  /// disturb the current bump position.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed array allocation (uninitialized storage).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Constructs a T in the arena. T must be trivially destructible: the
  /// arena never runs destructors.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Recycles the arena: keeps the first block for reuse, frees the rest,
  /// and invalidates every pointer previously handed out. Asserts (debug
  /// builds) that no Pin is live — an engine holding a pointer across a
  /// Reset is the use-after-free class this guard exists to catch.
  void Reset();

  /// Bytes handed out since construction/Reset.
  size_t bytes_used() const { return bytes_used_; }
  /// Bytes reserved from the system across all live blocks.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t block_count() const { return block_count_; }

  /// Incremented by every Reset; pointers from an older epoch are dead.
  uint64_t epoch() const { return epoch_; }

  /// Debug-only guard: while a Pin is live, Reset asserts. Engines that
  /// keep arena-backed pointers across calls hold a Pin so a misplaced
  /// Reset fails loudly in debug builds instead of corrupting memory.
  class Pin {
   public:
    explicit Pin(Arena& arena) : arena_(&arena) {
#ifndef NDEBUG
      ++arena_->live_pins_;
#endif
    }
    ~Pin() {
#ifndef NDEBUG
      if (arena_ != nullptr) --arena_->live_pins_;
#endif
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    Pin(Pin&& other) noexcept : arena_(other.arena_) {
      other.arena_ = nullptr;
    }

   private:
    Arena* arena_;
  };

  static constexpr size_t kDefaultBlockBytes = 1 << 16;
  /// Block doubling stops here so a huge chase doesn't hold half-empty
  /// multi-hundred-MB tails.
  static constexpr size_t kMaxBlockBytes = 1 << 22;

 private:
  struct Block {
    Block* next;
    size_t payload;
    // Payload bytes follow the header; kept max-aligned by allocation.
  };

  static char* PayloadOf(Block* block) {
    return reinterpret_cast<char*>(block) + kHeaderBytes;
  }
  static constexpr size_t kHeaderBytes =
      (sizeof(Block) + alignof(std::max_align_t) - 1) &
      ~(alignof(std::max_align_t) - 1);

  Block* NewBlock(size_t payload_bytes);
  void FreeChain(Block* block);

  Block* head_ = nullptr;      // current bump block (front of chain)
  char* pos_ = nullptr;
  char* end_ = nullptr;
  size_t next_block_bytes_;
  size_t first_block_bytes_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  size_t block_count_ = 0;
  uint64_t epoch_ = 0;
#ifndef NDEBUG
  int live_pins_ = 0;
#endif
};

}  // namespace gqe

#endif  // GQE_BASE_ARENA_H_
