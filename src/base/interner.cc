#include "base/interner.h"

#include <cassert>
#include <cstring>
#include <string>

namespace gqe {

Interner& Interner::Global() {
  static Interner* const kInstance = new Interner();
  return *kInstance;
}

uint32_t Interner::Intern(Pool pool, std::string_view name) {
  PoolData& data = GetPool(pool);
  auto [slot, inserted] = data.index.try_emplace(name, 0);
  if (!inserted) return slot->second;
  const uint32_t id = static_cast<uint32_t>(data.names.size());
  assert(id < (1u << 30) && "interner pool overflow");
  // Copy the bytes into the arena; the map key must view the stored copy,
  // not the caller's buffer, so it stays valid for the interner lifetime.
  char* stored = data.bytes.AllocateArray<char>(name.size());
  if (!name.empty()) std::memcpy(stored, name.data(), name.size());
  std::string_view view(stored, name.size());
  data.names.push_back(view);
  slot->first = view;
  slot->second = id;
  return id;
}

std::string_view Interner::Name(Pool pool, uint32_t id) const {
  const PoolData& data = GetPool(pool);
  assert(id < data.names.size());
  return data.names[id];
}

size_t Interner::PoolSize(Pool pool) const { return GetPool(pool).names.size(); }

void Interner::Reserve(Pool pool, size_t names) {
  PoolData& data = GetPool(pool);
  data.names.reserve(names);
  data.index.reserve(names);
}

uint64_t Interner::Rehashes(Pool pool) const {
  return GetPool(pool).index.rehashes();
}

uint32_t Interner::FreshVariable() {
  for (;;) {
    std::string candidate = "_v" + std::to_string(fresh_counter_++);
    PoolData& data = GetPool(Pool::kVariable);
    if (!data.index.contains(std::string_view(candidate))) {
      return Intern(Pool::kVariable, candidate);
    }
  }
}

uint32_t Interner::FreshConstant() {
  for (;;) {
    std::string candidate = "_c" + std::to_string(fresh_counter_++);
    PoolData& data = GetPool(Pool::kConstant);
    if (!data.index.contains(std::string_view(candidate))) {
      return Intern(Pool::kConstant, candidate);
    }
  }
}

}  // namespace gqe
