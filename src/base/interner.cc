#include "base/interner.h"

#include <cassert>

namespace gqe {

Interner& Interner::Global() {
  static Interner* const kInstance = new Interner();
  return *kInstance;
}

uint32_t Interner::Intern(Pool pool, std::string_view name) {
  PoolData& data = GetPool(pool);
  auto it = data.index.find(name);
  if (it != data.index.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(data.names.size());
  assert(id < (1u << 30) && "interner pool overflow");
  data.names.emplace_back(name);
  // The key must view the stored string, not the argument, so that it
  // remains valid for the lifetime of the interner.
  data.index.emplace(std::string_view(data.names.back()), id);
  return id;
}

std::string_view Interner::Name(Pool pool, uint32_t id) const {
  const PoolData& data = GetPool(pool);
  assert(id < data.names.size());
  return data.names[id];
}

size_t Interner::PoolSize(Pool pool) const { return GetPool(pool).names.size(); }

uint32_t Interner::FreshVariable() {
  for (;;) {
    std::string candidate = "_v" + std::to_string(fresh_counter_++);
    PoolData& data = GetPool(Pool::kVariable);
    if (data.index.find(candidate) == data.index.end()) {
      return Intern(Pool::kVariable, candidate);
    }
  }
}

uint32_t Interner::FreshConstant() {
  for (;;) {
    std::string candidate = "_c" + std::to_string(fresh_counter_++);
    PoolData& data = GetPool(Pool::kConstant);
    if (data.index.find(candidate) == data.index.end()) {
      return Intern(Pool::kConstant, candidate);
    }
  }
}

}  // namespace gqe
