#include "base/governor.h"

namespace gqe {

const char* StatusName(Status status) {
  switch (status) {
    case Status::kCompleted:
      return "completed";
    case Status::kBudgetExceeded:
      return "budget-exceeded";
    case Status::kDeadlineExceeded:
      return "deadline-exceeded";
    case Status::kCancelled:
      return "cancelled";
    case Status::kShardLost:
      return "shard-lost";
  }
  return "unknown";
}

CancelToken CancelToken::Create() {
  CancelToken token;
  token.flag_ = std::make_shared<std::atomic<bool>>(false);
  return token;
}

void CancelToken::RequestCancel() const {
  if (flag_ != nullptr) flag_->store(true, std::memory_order_release);
}

bool CancelToken::CancelRequested() const {
  return flag_ != nullptr && flag_->load(std::memory_order_acquire);
}

Governor::Governor(const ExecutionBudget& budget,
                   const TestFaultInjector* injector)
    : budget_(budget),
      injector_(injector),
      start_(std::chrono::steady_clock::now()) {
  if (budget_.deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ = start_ + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 budget_.deadline_ms));
  }
}

void Governor::Trip(Status cause) {
  int expected = static_cast<int>(Status::kCompleted);
  status_.compare_exchange_strong(expected, static_cast<int>(cause),
                                  std::memory_order_relaxed);
}

Status Governor::Charge(uint64_t nodes, size_t facts) {
  // The sticky status gates everything, counters included: charges
  // refused after the trip are work the caller does not perform, so
  // counting them would drift facts_charged arbitrarily past the budget
  // (engines entered post-trip still charge their inputs before their
  // first Check). Only the trip-crossing charge itself overshoots, by at
  // most its own size.
  Status current = status();
  if (current != Status::kCompleted) return current;
  if (nodes > 0) nodes_.fetch_add(nodes, std::memory_order_relaxed);
  if (facts > 0) facts_.fetch_add(facts, std::memory_order_relaxed);

  const uint64_t count =
      checkpoints_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (injector_ != nullptr && count >= injector_->at_checkpoint()) {
    Trip(injector_->status());
    return status();
  }
  if (budget_.cancel.CancelRequested()) {
    Trip(Status::kCancelled);
    return status();
  }
  // With per-node charging (injector mode) the clock is only probed every
  // kNodeBatch checkpoints; in normal batched mode every checkpoint
  // already represents a batch of work, so probe unconditionally.
  const bool probe_clock =
      injector_ == nullptr || nodes == 0 || count % kNodeBatch == 0;
  if (has_deadline_ && probe_clock &&
      std::chrono::steady_clock::now() >= deadline_) {
    Trip(Status::kDeadlineExceeded);
    return status();
  }
  if (budget_.max_search_nodes > 0 &&
      nodes_.load(std::memory_order_relaxed) > budget_.max_search_nodes) {
    Trip(Status::kBudgetExceeded);
    return status();
  }
  if (budget_.max_facts > 0 &&
      facts_.load(std::memory_order_relaxed) > budget_.max_facts) {
    Trip(Status::kBudgetExceeded);
    return status();
  }
  return Status::kCompleted;
}

Outcome Governor::MakeOutcome() const {
  Outcome outcome;
  outcome.status = status();
  outcome.elapsed_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  outcome.facts_charged =
      static_cast<size_t>(facts_.load(std::memory_order_relaxed));
  outcome.nodes_charged = nodes_.load(std::memory_order_relaxed);
  outcome.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  return outcome;
}

}  // namespace gqe
