#ifndef GQE_BASE_GOVERNOR_H_
#define GQE_BASE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

namespace gqe {

/// Why a governed computation stopped. Every kernel this repo relies on
/// is worst-case intractable (the chase need not terminate, homomorphism
/// search is NP-hard, exact treewidth is exponential); a production
/// service must be able to say *which* guard rail stopped a run instead
/// of hanging or silently truncating.
enum class Status : int {
  /// The engine reached its natural end (fixpoint, full enumeration, …).
  kCompleted = 0,
  /// A fact or search-node budget was exhausted.
  kBudgetExceeded = 1,
  /// The wall-clock deadline passed.
  kDeadlineExceeded = 2,
  /// The CancelToken was tripped by another thread.
  kCancelled = 3,
  /// A sharded run lost a shard irrecoverably (retries exhausted, no
  /// fallback): the round was discarded and the committed prefix is the
  /// last consistent boundary — the structured degradation terminal of
  /// shard/shard_chase.h.
  kShardLost = 4,
};

const char* StatusName(Status status);

/// Snapshot of a governed run: the sticky status plus resource counters.
struct Outcome {
  Status status = Status::kCompleted;
  double elapsed_ms = 0.0;
  size_t facts_charged = 0;
  uint64_t nodes_charged = 0;
  uint64_t checkpoints = 0;

  bool ok() const { return status == Status::kCompleted; }
};

/// A copyable, thread-safe cooperative cancellation handle. The default
/// constructor makes a *null* token that can never be cancelled (so every
/// ExecutionBudget carries one for free); Create() makes a live token
/// whose copies share one flag.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken Create();

  /// Requests cancellation. Safe from any thread; no-op on a null token.
  void RequestCancel() const;

  bool CancelRequested() const;

  bool valid() const { return flag_ != nullptr; }

  /// The raw shared flag, for async-signal-safe cancellation from signal
  /// handlers: storing to a lock-free std::atomic<bool> is signal-safe,
  /// while copying the token (a shared_ptr op) is not. The caller must
  /// keep a token copy alive for as long as a handler may dereference the
  /// pointer. Null for a null token.
  std::atomic<bool>* SignalSafeFlag() const { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Limits shared by every long-running engine. A zero field means
/// "unlimited" for that dimension. The single `kDefaultMaxFacts` replaces
/// the five divergent per-engine `max_facts` defaults the engines used to
/// carry (chase 1M, fc 50k, omq/guarded 5M); nested calls now share one
/// Governor instead of multiplying caps.
struct ExecutionBudget {
  static constexpr size_t kDefaultMaxFacts = 1000000;

  /// Total facts the computation may materialize (every insertion into an
  /// engine-owned instance is charged, including copying the input).
  size_t max_facts = kDefaultMaxFacts;

  /// Backtracking-search nodes (candidate facts tried) across all
  /// homomorphism searches and treewidth DP frames. 0 = unlimited.
  uint64_t max_search_nodes = 0;

  /// Wall-clock deadline, measured from Governor construction.
  /// 0 = no deadline.
  double deadline_ms = 0.0;

  /// Cooperative cancellation; null by default.
  CancelToken cancel;
};

/// Deterministic fault injection for tests: trips `status` as soon as the
/// governor's global checkpoint counter reaches `at_checkpoint`.
/// Checkpoint counts are deterministic for a fixed workload (each engine
/// charges a fixed amount of work per checkpoint), so the trip lands at
/// the same logical point at every thread count.
class TestFaultInjector {
 public:
  TestFaultInjector(Status status, uint64_t at_checkpoint)
      : status_(status), at_checkpoint_(at_checkpoint) {}

  Status status() const { return status_; }
  uint64_t at_checkpoint() const { return at_checkpoint_; }

 private:
  Status status_;
  uint64_t at_checkpoint_;
};

/// Thread-safe resource governor: engines call the Charge*/Check
/// checkpoints at every round / backtrack node batch / fact insertion,
/// and unwind promptly once the status turns non-Completed. The status is
/// *sticky*: after the first trip every further checkpoint reports the
/// same cause, so a governor shared across nested engines (OMQ → guarded
/// chase → homomorphism search) stops the whole pipeline.
class Governor {
 public:
  explicit Governor(const ExecutionBudget& budget,
                    const TestFaultInjector* injector = nullptr);

  /// Cooperative checkpoint: probes cancellation, the deadline and the
  /// fault injector. Call at least once per engine round.
  Status Check() { return Charge(0, 0); }

  /// Accounts `n` search nodes (batch-charged by the searchers), then
  /// checkpoints.
  Status ChargeNodes(uint64_t n) { return Charge(n, 0); }

  /// Accounts `n` fact insertions, then checkpoints. When this returns
  /// kBudgetExceeded the caller must not perform the insertion.
  Status ChargeFacts(size_t n) { return Charge(0, n); }

  /// Current sticky status without consuming a checkpoint. Cheap (one
  /// relaxed atomic load); safe to call per backtrack node.
  Status status() const {
    return static_cast<Status>(status_.load(std::memory_order_relaxed));
  }

  bool Tripped() const { return status() != Status::kCompleted; }

  /// Forces the governor into `cause` (idempotent; the first trip wins).
  void Trip(Status cause);

  /// Snapshot of counters + status for result structs.
  Outcome MakeOutcome() const;

  const ExecutionBudget& budget() const { return budget_; }

  /// How many search nodes a searcher should accumulate locally before
  /// calling ChargeNodes. Under a fault injector this is 1, so checkpoint
  /// counts equal node counts and are identical at every thread count
  /// (the injected trip lands at the same logical point); otherwise
  /// kNodeBatch keeps the shared counters out of the hot loop.
  uint64_t NodeChargeBatch() const { return injector_ != nullptr ? 1 : kNodeBatch; }

  static constexpr uint64_t kNodeBatch = 64;

 private:
  Status Charge(uint64_t nodes, size_t facts);

  ExecutionBudget budget_;
  const TestFaultInjector* injector_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;

  std::atomic<int> status_{static_cast<int>(Status::kCompleted)};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> nodes_{0};
  std::atomic<uint64_t> facts_{0};
};

/// Engines accept an optional shared `Governor*` in their options; when
/// none is given they govern themselves from the options' budget. This
/// helper owns the local governor in that second case.
class GovernorScope {
 public:
  GovernorScope(Governor* shared, const ExecutionBudget& budget,
                const TestFaultInjector* injector = nullptr) {
    if (shared != nullptr) {
      governor_ = shared;
    } else {
      local_.emplace(budget, injector);
      governor_ = &*local_;
    }
  }

  Governor* get() { return governor_; }
  Governor* operator->() { return governor_; }

 private:
  std::optional<Governor> local_;
  Governor* governor_ = nullptr;
};

}  // namespace gqe

#endif  // GQE_BASE_GOVERNOR_H_
