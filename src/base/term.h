#ifndef GQE_BASE_TERM_H_
#define GQE_BASE_TERM_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace gqe {

/// A term is a constant, a labelled null (a fresh constant invented by the
/// chase), or a variable (paper, Section 2). Terms are 32-bit values: two
/// tag bits plus a 30-bit id into the global Interner (nulls use a counter
/// instead of interned names).
///
/// Following the paper, instances contain only constants and nulls;
/// queries and TGDs contain variables (and possibly constants).
class Term {
 public:
  enum class Kind : uint32_t { kConstant = 0, kNull = 1, kVariable = 2 };

  /// Default-constructed term is the constant with id 0 only if such a
  /// constant was interned; prefer the factories below.
  Term() : bits_(0) {}

  /// Returns the constant named `name`, interning it if necessary.
  static Term Constant(std::string_view name);

  /// Returns the variable named `name`, interning it if necessary.
  static Term Variable(std::string_view name);

  /// Returns a labelled null with the given id. Nulls with equal ids are
  /// equal; use FreshNull for a null distinct from all existing ones.
  static Term Null(uint32_t id);

  /// Returns a labelled null distinct from every null created so far in
  /// this process. Thread-safe; ids are allocated from a process-wide
  /// atomic counter.
  static Term FreshNull();

  /// The id the next FreshNull() will use. Together with SetNextNullId
  /// this lets deterministic replays (differential tests, chase
  /// re-execution) reproduce bit-identical labelled nulls.
  static uint32_t NextNullId();
  static void SetNextNullId(uint32_t id);

  /// Returns a variable distinct from every interned variable.
  static Term FreshVariable();

  /// Largest id representable in the 30-bit payload.
  static constexpr uint32_t kMaxId = 0x3fffffffu;

  Kind kind() const { return static_cast<Kind>(bits_ >> 30); }
  uint32_t id() const { return bits_ & kMaxId; }

  bool IsConstant() const { return kind() == Kind::kConstant; }
  bool IsNull() const { return kind() == Kind::kNull; }
  bool IsVariable() const { return kind() == Kind::kVariable; }
  /// Ground terms are the terms that may appear in instances: constants
  /// and labelled nulls.
  bool IsGround() const { return !IsVariable(); }

  /// Returns a printable name. Constants/variables return their interned
  /// name; nulls return a generated name of the form `_:n<id>`.
  std::string ToString() const;

  /// Raw 32-bit representation, usable as a dense hash/index key.
  uint32_t bits() const { return bits_; }
  static Term FromBits(uint32_t bits) { return Term(bits); }

  friend bool operator==(Term a, Term b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Term a, Term b) { return a.bits_ != b.bits_; }
  friend bool operator<(Term a, Term b) { return a.bits_ < b.bits_; }

 private:
  explicit Term(uint32_t bits) : bits_(bits) {}

  uint32_t bits_;
};

std::ostream& operator<<(std::ostream& os, Term term);

struct TermHash {
  size_t operator()(Term t) const {
    // Multiplicative hash of the 32-bit representation.
    return static_cast<size_t>(t.bits()) * 0x9e3779b97f4a7c15ull >> 16;
  }
};

}  // namespace gqe

namespace std {
template <>
struct hash<gqe::Term> {
  size_t operator()(gqe::Term t) const { return gqe::TermHash{}(t); }
};
}  // namespace std

#endif  // GQE_BASE_TERM_H_
