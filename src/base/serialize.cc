#include "base/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/interner.h"
#include "base/schema.h"

namespace gqe {

namespace {

// "GQES" in little-endian byte order.
constexpr uint32_t kMagic = 0x53455147u;
// magic u32 | kind u16 | version u16 | payload size u64 | crc u32.
constexpr size_t kHeaderSize = 4 + 2 + 2 + 8 + 4;

const uint32_t* Crc32Table() {
  static const uint32_t* const kTable = [] {
    uint32_t* table = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
      }
      table[i] = crc;
    }
    return table;
  }();
  return kTable;
}

}  // namespace

const char* SnapshotErrorName(SnapshotError error) {
  switch (error) {
    case SnapshotError::kNone:
      return "ok";
    case SnapshotError::kIoError:
      return "io-error";
    case SnapshotError::kNotFound:
      return "not-found";
    case SnapshotError::kBadMagic:
      return "bad-magic";
    case SnapshotError::kTruncated:
      return "truncated";
    case SnapshotError::kChecksumMismatch:
      return "checksum-mismatch";
    case SnapshotError::kVersionMismatch:
      return "version-mismatch";
    case SnapshotError::kFormatError:
      return "format-error";
    case SnapshotError::kInternerConflict:
      return "interner-conflict";
  }
  return "unknown";
}

void BinaryWriter::WriteU8(uint8_t value) {
  buffer_.push_back(static_cast<char>(value));
}

void BinaryWriter::WriteU16(uint16_t value) {
  WriteU8(static_cast<uint8_t>(value));
  WriteU8(static_cast<uint8_t>(value >> 8));
}

void BinaryWriter::WriteU32(uint32_t value) {
  WriteU16(static_cast<uint16_t>(value));
  WriteU16(static_cast<uint16_t>(value >> 16));
}

void BinaryWriter::WriteU64(uint64_t value) {
  WriteU32(static_cast<uint32_t>(value));
  WriteU32(static_cast<uint32_t>(value >> 32));
}

void BinaryWriter::WriteString(std::string_view value) {
  WriteU64(value.size());
  buffer_.append(value.data(), value.size());
}

bool BinaryReader::Take(size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool BinaryReader::ReadU8(uint8_t* out) {
  const char* p;
  if (!Take(1, &p)) return false;
  *out = static_cast<uint8_t>(*p);
  return true;
}

bool BinaryReader::ReadU16(uint16_t* out) {
  const char* p;
  if (!Take(2, &p)) return false;
  *out = static_cast<uint16_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint16_t>(static_cast<uint8_t>(p[1])) << 8;
  return true;
}

bool BinaryReader::ReadU32(uint32_t* out) {
  uint16_t lo, hi;
  if (!ReadU16(&lo) || !ReadU16(&hi)) return false;
  *out = static_cast<uint32_t>(lo) | static_cast<uint32_t>(hi) << 16;
  return true;
}

bool BinaryReader::ReadU64(uint64_t* out) {
  uint32_t lo, hi;
  if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
  *out = static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
  return true;
}

bool BinaryReader::ReadI32(int32_t* out) {
  uint32_t raw;
  if (!ReadU32(&raw)) return false;
  *out = static_cast<int32_t>(raw);
  return true;
}

bool BinaryReader::ReadBool(bool* out) {
  uint8_t raw;
  if (!ReadU8(&raw)) return false;
  *out = raw != 0;
  return true;
}

bool BinaryReader::ReadString(std::string* out) {
  uint64_t size;
  if (!ReadU64(&size)) return false;
  // An impossible length (longer than the remaining bytes) must fail
  // before any allocation, so a corrupt length cannot OOM the process.
  const char* p;
  if (size > remaining() || !Take(static_cast<size_t>(size), &p)) {
    ok_ = false;
    return false;
  }
  out->assign(p, static_cast<size_t>(size));
  return true;
}

uint32_t Crc32(std::string_view data) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string WrapSnapshot(uint16_t kind, std::string_view payload) {
  BinaryWriter header;
  header.WriteU32(kMagic);
  header.WriteU16(kind);
  header.WriteU16(kSnapshotVersion);
  header.WriteU64(payload.size());
  header.WriteU32(Crc32(payload));
  std::string out = header.Take();
  out.append(payload.data(), payload.size());
  return out;
}

SnapshotStatus UnwrapSnapshot(std::string_view bytes, uint16_t kind,
                              std::string_view* payload) {
  if (bytes.size() < kHeaderSize) {
    return SnapshotStatus::Fail(
        SnapshotError::kTruncated,
        "snapshot shorter than its header (" +
            std::to_string(bytes.size()) + " bytes)");
  }
  BinaryReader reader(bytes.substr(0, kHeaderSize));
  uint32_t magic = 0, crc = 0;
  uint16_t stored_kind = 0, version = 0;
  uint64_t payload_size = 0;
  reader.ReadU32(&magic);
  reader.ReadU16(&stored_kind);
  reader.ReadU16(&version);
  reader.ReadU64(&payload_size);
  reader.ReadU32(&crc);
  if (magic != kMagic) {
    return SnapshotStatus::Fail(SnapshotError::kBadMagic,
                                "not a gqe snapshot (bad magic)");
  }
  if (version > kSnapshotVersion) {
    return SnapshotStatus::Fail(
        SnapshotError::kVersionMismatch,
        "snapshot version " + std::to_string(version) +
            " is newer than supported version " +
            std::to_string(kSnapshotVersion));
  }
  if (stored_kind != kind) {
    return SnapshotStatus::Fail(
        SnapshotError::kFormatError,
        "snapshot kind " + std::to_string(stored_kind) + ", expected " +
            std::to_string(kind));
  }
  if (bytes.size() - kHeaderSize != payload_size) {
    return SnapshotStatus::Fail(
        SnapshotError::kTruncated,
        "payload is " + std::to_string(bytes.size() - kHeaderSize) +
            " bytes, header claims " + std::to_string(payload_size));
  }
  std::string_view body = bytes.substr(kHeaderSize);
  const uint32_t actual = Crc32(body);
  if (actual != crc) {
    return SnapshotStatus::Fail(
        SnapshotError::kChecksumMismatch,
        "payload checksum mismatch (stored " + std::to_string(crc) +
            ", computed " + std::to_string(actual) + ")");
  }
  *payload = body;
  return SnapshotStatus::Ok();
}

SnapshotStatus ReadFileBytes(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    const SnapshotError error = errno == ENOENT ? SnapshotError::kNotFound
                                                : SnapshotError::kIoError;
    return SnapshotStatus::Fail(
        error, path + ": " + std::strerror(errno));
  }
  out->clear();
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      return SnapshotStatus::Fail(SnapshotError::kIoError,
                                  path + ": " + std::strerror(saved));
    }
    if (n == 0) break;
    out->append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return SnapshotStatus::Ok();
}

namespace {

WriteFaultInjectorForTest* g_write_fault_injector = nullptr;

// The write syscall as seen by WriteFileAtomic: defers to the injector
// (short writes, then a hard errno) when one is installed.
ssize_t WriteForSnapshot(int fd, const char* data, size_t size) {
  WriteFaultInjectorForTest* injector = g_write_fault_injector;
  if (injector != nullptr) {
    if (injector->written >= injector->fail_after_bytes) {
      errno = injector->error != 0 ? injector->error : ENOSPC;
      return -1;
    }
    // Model a device with limited room: accept only what fits, so the
    // caller's short-write loop is exercised before the hard failure.
    const size_t room = injector->fail_after_bytes - injector->written;
    if (size > room) size = room;
    injector->written += size;
  }
  return ::write(fd, data, size);
}

}  // namespace

void SetWriteFaultInjectorForTest(WriteFaultInjectorForTest* injector) {
  g_write_fault_injector = injector;
}

SnapshotStatus FsyncParentDir(const std::string& path) {
  std::string dir;
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    dir = ".";
  } else if (slash == 0) {
    dir = "/";
  } else {
    dir = path.substr(0, slash);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return SnapshotStatus::Fail(SnapshotError::kIoError,
                                dir + ": open for fsync: " +
                                    std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    return SnapshotStatus::Fail(SnapshotError::kIoError,
                                dir + ": fsync: " + std::strerror(saved));
  }
  ::close(fd);
  return SnapshotStatus::Ok();
}

SnapshotStatus WriteFileAtomic(const std::string& path,
                               std::string_view bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return SnapshotStatus::Fail(SnapshotError::kIoError,
                                tmp + ": " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        WriteForSnapshot(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return SnapshotStatus::Fail(SnapshotError::kIoError,
                                  tmp + ": " + std::strerror(saved));
    }
    written += static_cast<size_t>(n);
  }
  // The data must be on disk before the rename makes it visible;
  // otherwise a crash could leave a fully renamed but empty snapshot.
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return SnapshotStatus::Fail(SnapshotError::kIoError,
                                tmp + ": fsync: " + std::strerror(saved));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return SnapshotStatus::Fail(SnapshotError::kIoError,
                                path + ": rename: " + std::strerror(saved));
  }
  // Make the rename durable: without fsyncing the directory, a power
  // loss can forget the new directory entry even though the file's own
  // bytes were fsynced — the snapshot would survive a crash but not an
  // outage. The old entry (if any) remains valid either way, so a
  // failure here degrades durability of *this* generation only.
  return FsyncParentDir(path);
}

void EncodeInterner(BinaryWriter* writer) {
  Interner& interner = Interner::Global();
  const Interner::Pool pools[] = {Interner::Pool::kConstant,
                                  Interner::Pool::kVariable,
                                  Interner::Pool::kPredicate};
  for (Interner::Pool pool : pools) {
    const size_t n = interner.PoolSize(pool);
    writer->WriteU64(n);
    for (uint32_t id = 0; id < n; ++id) {
      writer->WriteString(interner.Name(pool, id));
      if (pool == Interner::Pool::kPredicate) {
        writer->WriteI32(predicates::Arity(id));
      }
    }
  }
  writer->WriteU64(interner.fresh_counter());
}

SnapshotStatus DecodeInterner(BinaryReader* reader) {
  Interner& interner = Interner::Global();
  const Interner::Pool pools[] = {Interner::Pool::kConstant,
                                  Interner::Pool::kVariable,
                                  Interner::Pool::kPredicate};
  for (Interner::Pool pool : pools) {
    uint64_t n = 0;
    if (!reader->ReadU64(&n)) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "interner section cut short");
    }
    for (uint64_t id = 0; id < n; ++id) {
      std::string name;
      if (!reader->ReadString(&name)) {
        return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                    "interner name cut short");
      }
      int32_t arity = 0;
      if (pool == Interner::Pool::kPredicate &&
          !reader->ReadI32(&arity)) {
        return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                    "predicate arity cut short");
      }
      uint32_t got;
      if (pool == Interner::Pool::kPredicate) {
        // predicates::Intern aborts on an arity conflict; probe first so
        // a mismatching snapshot is an error, not a crash.
        const PredicateId existing = predicates::Lookup(name);
        if (existing != static_cast<PredicateId>(-1) &&
            predicates::Arity(existing) != arity) {
          return SnapshotStatus::Fail(
              SnapshotError::kInternerConflict,
              "predicate '" + name + "' has arity " +
                  std::to_string(predicates::Arity(existing)) +
                  " here but " + std::to_string(arity) +
                  " in the snapshot");
        }
        got = predicates::Intern(name, arity);
      } else {
        got = interner.Intern(pool, name);
      }
      if (got != id) {
        return SnapshotStatus::Fail(
            SnapshotError::kInternerConflict,
            "name '" + name + "' interned at id " + std::to_string(got) +
                ", snapshot expects " + std::to_string(id));
      }
    }
  }
  uint64_t fresh = 0;
  if (!reader->ReadU64(&fresh)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "fresh counter cut short");
  }
  if (fresh > interner.fresh_counter()) interner.set_fresh_counter(fresh);
  return SnapshotStatus::Ok();
}

void EncodeAtomVector(const std::vector<Atom>& atoms, BinaryWriter* writer) {
  writer->WriteU64(atoms.size());
  for (const Atom& atom : atoms) {
    writer->WriteU32(atom.predicate());
    writer->WriteU32(static_cast<uint32_t>(atom.arity()));
    for (Term t : atom.args()) writer->WriteU32(t.bits());
  }
}

SnapshotStatus DecodeAtomVector(BinaryReader* reader,
                                std::vector<Atom>* out) {
  Interner& interner = Interner::Global();
  const size_t num_predicates =
      interner.PoolSize(Interner::Pool::kPredicate);
  const size_t num_constants = interner.PoolSize(Interner::Pool::kConstant);
  uint64_t count = 0;
  if (!reader->ReadU64(&count)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "fact count cut short");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t pred = 0, arity = 0;
    if (!reader->ReadU32(&pred) || !reader->ReadU32(&arity)) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "fact header cut short");
    }
    if (pred >= num_predicates) {
      return SnapshotStatus::Fail(
          SnapshotError::kFormatError,
          "fact references unknown predicate id " + std::to_string(pred));
    }
    if (static_cast<int>(arity) != predicates::Arity(pred)) {
      return SnapshotStatus::Fail(
          SnapshotError::kFormatError,
          "fact arity " + std::to_string(arity) + " does not match '" +
              std::string(predicates::Name(pred)) + "/" +
              std::to_string(predicates::Arity(pred)) + "'");
    }
    std::vector<Term> args;
    args.reserve(arity);
    for (uint32_t a = 0; a < arity; ++a) {
      uint32_t bits = 0;
      if (!reader->ReadU32(&bits)) {
        return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                    "fact argument cut short");
      }
      Term t = Term::FromBits(bits);
      if (t.IsVariable()) {
        return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                    "instance fact contains a variable");
      }
      if (t.IsConstant() && t.id() >= num_constants) {
        return SnapshotStatus::Fail(
            SnapshotError::kFormatError,
            "fact references unknown constant id " + std::to_string(t.id()));
      }
      if (t.kind() != Term::Kind::kConstant &&
          t.kind() != Term::Kind::kNull) {
        return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                    "fact argument has an invalid tag");
      }
      args.push_back(t);
    }
    out->push_back(Atom(pred, std::move(args)));
  }
  return SnapshotStatus::Ok();
}

void EncodeInstance(const Instance& instance, BinaryWriter* writer) {
  EncodeAtomVector(instance.atoms(), writer);
}

SnapshotStatus DecodeInstance(BinaryReader* reader, Instance* out) {
  std::vector<Atom> atoms;
  SnapshotStatus status = DecodeAtomVector(reader, &atoms);
  if (!status.ok()) return status;
  out->InsertAll(atoms);
  return SnapshotStatus::Ok();
}

}  // namespace gqe
