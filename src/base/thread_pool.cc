#include "base/thread_pool.h"

#include <algorithm>

namespace gqe {

size_t ThreadPool::ResolveThreads(int requested) {
  if (requested < 0) return 1;
  if (requested == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
  return static_cast<size_t>(requested);
}

ThreadPool::ThreadPool(size_t threads) : threads_(std::max<size_t>(1, threads)) {
  workers_.reserve(threads_ - 1);
  for (size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainIndices() {
  for (;;) {
    size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_size_) return;
    (*job_fn_)(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    job_ready_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    --not_started_;
    ++active_;
    lock.unlock();
    DrainIndices();
    lock.lock();
    --active_;
    if (not_started_ == 0 && active_ == 0) job_done_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    not_started_ = workers_.size();
    ++generation_;
  }
  job_ready_.notify_all();
  DrainIndices();
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [&] { return not_started_ == 0 && active_ == 0; });
  job_fn_ = nullptr;
  job_size_ = 0;
}

}  // namespace gqe
