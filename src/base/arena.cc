#include "base/arena.h"

#include <cstdlib>

namespace gqe {

Arena::Arena(size_t block_bytes)
    : next_block_bytes_(block_bytes < 64 ? 64 : block_bytes),
      first_block_bytes_(next_block_bytes_) {}

Arena::~Arena() {
  FreeChain(head_);
}

Arena::Arena(Arena&& other) noexcept
    : head_(other.head_),
      pos_(other.pos_),
      end_(other.end_),
      next_block_bytes_(other.next_block_bytes_),
      first_block_bytes_(other.first_block_bytes_),
      bytes_used_(other.bytes_used_),
      bytes_reserved_(other.bytes_reserved_),
      block_count_(other.block_count_),
      epoch_(other.epoch_) {
  other.head_ = nullptr;
  other.pos_ = other.end_ = nullptr;
  other.bytes_used_ = other.bytes_reserved_ = 0;
  other.block_count_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this == &other) return *this;
#ifndef NDEBUG
  assert(live_pins_ == 0 && "arena replaced while pointers are pinned");
#endif
  FreeChain(head_);
  head_ = other.head_;
  pos_ = other.pos_;
  end_ = other.end_;
  next_block_bytes_ = other.next_block_bytes_;
  first_block_bytes_ = other.first_block_bytes_;
  bytes_used_ = other.bytes_used_;
  bytes_reserved_ = other.bytes_reserved_;
  block_count_ = other.block_count_;
  epoch_ = other.epoch_;
  other.head_ = nullptr;
  other.pos_ = other.end_ = nullptr;
  other.bytes_used_ = other.bytes_reserved_ = 0;
  other.block_count_ = 0;
  return *this;
}

Arena::Block* Arena::NewBlock(size_t payload_bytes) {
  void* raw = std::malloc(kHeaderBytes + payload_bytes);
  if (raw == nullptr) throw std::bad_alloc();
  Block* block = static_cast<Block*>(raw);
  block->next = nullptr;
  block->payload = payload_bytes;
  bytes_reserved_ += payload_bytes;
  ++block_count_;
  return block;
}

void Arena::FreeChain(Block* block) {
  while (block != nullptr) {
    Block* next = block->next;
    std::free(block);
    block = next;
  }
}

void* Arena::Allocate(size_t bytes, size_t align) {
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  // Align the bump pointer. malloc'd block payloads are max-aligned, so
  // alignments up to max_align_t cost at most `align - 1` slack; larger
  // (over-aligned) requests pad from the same arithmetic.
  uintptr_t current = reinterpret_cast<uintptr_t>(pos_);
  uintptr_t aligned = (current + align - 1) & ~(uintptr_t(align) - 1);
  if (head_ == nullptr || aligned + bytes > reinterpret_cast<uintptr_t>(end_)) {
    // A request larger than the next block size gets a dedicated block
    // spliced *behind* the bump block, so the current block keeps
    // filling; otherwise open a fresh doubled block and bump from it.
    size_t want = bytes + align;  // room to realign inside the new block
    if (head_ != nullptr && want > next_block_bytes_) {
      Block* big = NewBlock(want);
      big->next = head_->next;
      head_->next = big;
      uintptr_t base = reinterpret_cast<uintptr_t>(PayloadOf(big));
      uintptr_t result = (base + align - 1) & ~(uintptr_t(align) - 1);
      bytes_used_ += bytes;
      return reinterpret_cast<void*>(result);
    }
    size_t payload = next_block_bytes_ > want ? next_block_bytes_ : want;
    Block* block = NewBlock(payload);
    block->next = head_;
    head_ = block;
    pos_ = PayloadOf(block);
    end_ = pos_ + payload;
    if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
    current = reinterpret_cast<uintptr_t>(pos_);
    aligned = (current + align - 1) & ~(uintptr_t(align) - 1);
  }
  pos_ = reinterpret_cast<char*>(aligned + bytes);
  bytes_used_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::Reset() {
#ifndef NDEBUG
  assert(live_pins_ == 0 && "arena Reset while pointers are pinned");
#endif
  ++epoch_;
  bytes_used_ = 0;
  if (head_ == nullptr) return;
  // Keep the newest (largest) block for reuse; free the rest.
  FreeChain(head_->next);
  head_->next = nullptr;
  block_count_ = 1;
  bytes_reserved_ = head_->payload;
  pos_ = PayloadOf(head_);
  end_ = pos_ + head_->payload;
}

}  // namespace gqe
