#ifndef GQE_BASE_ATOM_H_
#define GQE_BASE_ATOM_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/schema.h"
#include "base/term.h"

namespace gqe {

/// An atom R(t1,...,tn): a predicate applied to terms (paper, Section 2).
/// Atoms over constants/nulls only are *facts* and populate instances;
/// atoms with variables appear in queries and TGDs.
class Atom {
 public:
  Atom() : predicate_(0) {}
  Atom(PredicateId predicate, std::vector<Term> args);

  /// Convenience factory that interns the predicate with the arity implied
  /// by the argument list.
  static Atom Make(std::string_view predicate_name,
                   std::vector<Term> args);

  PredicateId predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>& mutable_args() { return args_; }
  int arity() const { return static_cast<int>(args_.size()); }

  /// True if no argument is a variable.
  bool IsGround() const;

  /// Appends the distinct variables of this atom to `out` (in order of
  /// first occurrence, no duplicates against the existing contents).
  void CollectVariables(std::vector<Term>* out) const;

  /// Appends the distinct ground terms (constants and nulls) to `out`.
  void CollectGroundTerms(std::vector<Term>* out) const;

  /// True if every term in `terms` occurs in this atom. Used for guard
  /// checks.
  bool ContainsAll(const std::vector<Term>& terms) const;

  bool Contains(Term t) const;

  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate_ == b.predicate_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate_ != b.predicate_) return a.predicate_ < b.predicate_;
    return a.args_ < b.args_;
  }

 private:
  PredicateId predicate_;
  std::vector<Term> args_;
};

std::ostream& operator<<(std::ostream& os, const Atom& atom);

struct AtomHash {
  size_t operator()(const Atom& atom) const;
};

/// Returns the distinct variables occurring in `atoms`, in order of first
/// occurrence.
std::vector<Term> VariablesOf(const std::vector<Atom>& atoms);

/// Returns the distinct ground terms (constants/nulls) in `atoms`.
std::vector<Term> GroundTermsOf(const std::vector<Atom>& atoms);

/// Prints a comma-separated atom list.
std::string AtomsToString(const std::vector<Atom>& atoms);

}  // namespace gqe

#endif  // GQE_BASE_ATOM_H_
