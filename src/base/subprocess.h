#ifndef GQE_BASE_SUBPROCESS_H_
#define GQE_BASE_SUBPROCESS_H_

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace gqe {

/// Hard per-worker resource caps installed in the child via setrlimit
/// before any request work runs. Zero means "no cap" for that dimension.
/// These are the out-of-process guard rails behind the in-process
/// Governor: a worker that ignores its budget (a runaway loop, a leak, a
/// pathological allocation) is stopped by the kernel, not trusted to stop
/// itself.
struct WorkerLimits {
  /// RLIMIT_CPU, in whole seconds (rounded up). Exceeding it delivers
  /// SIGXCPU (default: kills the worker), which the supervisor classifies
  /// as a cpu-limit death.
  double cpu_seconds = 0.0;

  /// RLIMIT_AS, in bytes. An allocation past the cap fails (std::bad_alloc
  /// / nullptr), which the worker entry point turns into a dedicated OOM
  /// exit code instead of an abort.
  size_t address_space_bytes = 0;
};

/// How a reaped worker ended.
struct WorkerExit {
  /// True once waitpid reported the process gone (exited or signaled).
  bool reaped = false;
  bool exited = false;
  int exit_code = 0;
  bool signaled = false;
  int term_signal = 0;
};

/// A fork-isolated worker process plus the two pipes the supervisor reads:
/// `result_fd` carries the worker's serialized result (written once,
/// before exit) and `heartbeat_fd` carries liveness bytes. Both parent
/// ends are non-blocking.
///
/// IMPORTANT: Spawn forks without exec, so the child runs full C++ in the
/// parent's address-space image. That is only safe when the parent is
/// single-threaded at fork time (otherwise another thread may hold the
/// malloc lock forever in the child) — the serve supervisor is a
/// single-threaded event loop for exactly this reason.
class WorkerProcess {
 public:
  WorkerProcess() = default;
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;
  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  ~WorkerProcess();

  /// Forks a worker. In the child: installs `limits` (setrlimit), ignores
  /// SIGPIPE, closes the parent pipe ends, runs `body(result_fd,
  /// heartbeat_fd)` and passes its return value to _exit. Everything
  /// between fork and `body` is async-signal-safe. Returns false (with
  /// `error` set) when pipe/fork creation fails; the caller treats that as
  /// a retryable spawn error, not a crash.
  static bool Spawn(const WorkerLimits& limits,
                    const std::function<int(int result_fd, int heartbeat_fd)>& body,
                    WorkerProcess* out, std::string* error);

  /// Long-lived worker variant: adds a parent→child command pipe so one
  /// forked worker can serve many commands instead of fork-per-task. The
  /// child's read end is blocking (the worker parks in read between
  /// commands); the parent's write end is non-blocking so a stalled
  /// (SIGSTOP'd) worker with a full pipe can never wedge the supervisor —
  /// WriteCommand below polls with a deadline instead.
  static bool Spawn(
      const WorkerLimits& limits,
      const std::function<int(int command_fd, int result_fd, int heartbeat_fd)>&
          body,
      WorkerProcess* out, std::string* error);

  /// Writes `data` to the command pipe, polling past EAGAIN until
  /// `timeout_ms` elapses or the worker dies. Returns false on timeout,
  /// peer-gone, hard error, or when no command pipe exists; the caller
  /// treats any failure as a worker fault (kill + respawn), never a hang.
  bool WriteCommand(std::string_view data, double timeout_ms);

  /// Closes the parent's command write end. The worker sees EOF on its
  /// next read and exits cleanly — the graceful half of teardown.
  void CloseCommand();

  pid_t pid() const { return pid_; }
  bool running() const { return pid_ > 0 && !exit_.reaped; }
  const WorkerExit& exit_status() const { return exit_; }

  /// Non-blocking reap attempt (waitpid WNOHANG, retried across EINTR).
  /// Returns true when the worker is gone and `exit_status()` is final.
  /// Safe to call repeatedly. If some other code path already reaped the
  /// pid (ECHILD), the worker is marked reaped with an unknown exit
  /// instead of spinning on a zombie that will never appear.
  bool Poll();

  /// Blocking reap with a deadline: polls waitpid and drains both pipes
  /// until the worker is reaped or `timeout_ms` elapses. The supervisor
  /// calls this after Kill(SIGKILL) so long chaos soaks leak no zombies.
  /// Returns true when the worker was reaped within the deadline.
  bool WaitReaped(double timeout_ms);

  /// Drains available bytes from the result pipe into `result_bytes()`.
  /// Non-blocking; call from the supervisor loop and once more after the
  /// worker is reaped (the pipe buffers the final write).
  void DrainResult();

  /// Drains the heartbeat pipe; returns the number of beats consumed.
  size_t DrainHeartbeats();

  /// Sends `sig` to the worker (no-op once reaped). SIGKILL also reaches
  /// a SIGSTOP'd worker, which is how stalls are put down.
  void Kill(int sig);

  const std::string& result_bytes() const { return result_; }

  /// Moves the accumulated result bytes out, leaving the buffer empty.
  /// Long-lived workers stream many framed replies through one pipe; the
  /// supervisor takes what has arrived and reassembles frames itself.
  std::string TakeResult() { return std::move(result_); }

 private:
  void CloseFds();

  pid_t pid_ = -1;
  int command_fd_ = -1;
  int result_fd_ = -1;
  int heartbeat_fd_ = -1;
  WorkerExit exit_;
  std::string result_;
};

/// Child-side liveness: writes one byte to `fd` every `interval_ms` from a
/// background thread until destroyed. A worker that stalls wholesale
/// (SIGSTOP, kernel livelock) stops beating — its threads stop with it —
/// and the supervisor's heartbeat timeout reaps it.
class HeartbeatWriter {
 public:
  HeartbeatWriter(int fd, double interval_ms);
  ~HeartbeatWriter();

  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Outcome of trying to peel one length-prefixed frame off a stream
/// buffer (see TakeLengthPrefixedFrame).
enum class FrameTake : int {
  /// A complete frame was extracted into `payload`.
  kFrame = 0,
  /// The buffer holds only a partial frame; read more and retry.
  kNeedMore = 1,
  /// The declared length exceeds `max_bytes` — the stream is garbage (or
  /// hostile) and the connection/worker must be torn down, because no
  /// amount of further reading resynchronizes a length-prefixed stream.
  kMalformed = 2,
};

/// Appends `payload` to `out` as a u32-little-endian-length-prefixed
/// frame. The pipe protocols between the shard coordinator and its
/// long-lived workers use this framing in both directions; payload
/// integrity is the embedded snapshot envelope's job, framing only
/// delimits.
void AppendLengthPrefixedFrame(std::string* out, std::string_view payload);

/// Attempts to peel one frame off the front of `buffer`. On kFrame the
/// frame's payload is moved into `payload` and erased from `buffer`.
FrameTake TakeLengthPrefixedFrame(std::string* buffer, std::string* payload,
                                  size_t max_bytes);

/// Child-side blocking read of one frame from `fd`. Returns false on
/// EOF, error, or an oversized declared length — for a long-lived worker
/// all three mean "supervisor is gone or insane: exit".
bool ReadLengthPrefixedFrameBlocking(int fd, std::string* payload,
                                     size_t max_bytes);

/// Writes all of `data` to `fd`, retrying on EINTR / short writes.
/// Returns false on the first hard write error. When `errno_out` is
/// non-null it receives the failing errno (0 on success) so callers can
/// distinguish a vanished reader (EPIPE/ECONNRESET — see
/// IsPeerGoneErrno) from a genuine I/O failure.
bool WriteAllToFd(int fd, std::string_view data, int* errno_out = nullptr);

/// True when a write errno means the other end of the pipe/socket is
/// gone (reader closed or connection reset) rather than the write
/// itself malfunctioning. With SIGPIPE ignored — which both the serve
/// front ends and every forked worker do — a dead peer surfaces as one
/// of these errnos on the offending fd instead of a process-wide
/// signal, and callers classify it as structured peer loss.
bool IsPeerGoneErrno(int err);

/// Installs `limits` on the calling process via setrlimit. Used by the
/// worker child setup and by deterministic OOM fault injection (a tiny
/// address-space cap makes the next big allocation fail). Async-signal-safe.
void InstallWorkerLimits(const WorkerLimits& limits);

/// Worker children inherit every supervisor fd at fork. Sockets must not
/// survive into orphaned workers: an orphan holding the listening socket
/// blocks the restarted daemon's bind() (SO_REUSEADDR does not cover a
/// live listener), and one holding an accepted connection keeps a dead
/// daemon's client from ever seeing EOF. Front ends register such fds
/// here; Spawn closes every registered fd in the child immediately after
/// fork. The registry is a fixed array walked with ::close, so the
/// child-side sweep stays async-signal-safe; registration happens only on
/// the single-threaded supervisor, so no locking.
void RegisterFdClosedInWorkers(int fd);
void UnregisterFdClosedInWorkers(int fd);

/// splitmix64 finalizer: the deterministic mixing function behind chaos
/// draws, retry jitter and shard ownership. Every (key, attempt) pair gets
/// its own stream, so concurrent scheduling cannot reorder the randomness.
uint64_t Mix64(uint64_t x);

/// Exponential backoff with deterministic jitter in [0.5, 1.5):
/// min(cap, base * 2^(attempt-1)) * (0.5 + draw(seed, stream)), where
/// `attempt` is 1-based and `cap_ms <= 0` means uncapped. Shared by the
/// serve supervisor's retry ladder and the shard coordinator's
/// respawn-and-replay loop so both back off identically for a given seed.
double BackoffDelayMs(int attempt, double base_ms, double cap_ms,
                      uint64_t seed, uint64_t stream);

}  // namespace gqe

#endif  // GQE_BASE_SUBPROCESS_H_
