#include "base/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

namespace gqe {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void CloseQuietly(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

// Drains whatever is available from a non-blocking fd. Appends to `out`
// when non-null; returns bytes read this call.
size_t DrainFd(int fd, std::string* out) {
  if (fd < 0) return 0;
  size_t total = 0;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      if (out != nullptr) out->append(buffer, static_cast<size_t>(n));
      total += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // 0 = writer gone, EAGAIN = drained for now
  }
  return total;
}

// Supervisor-owned sockets that must not leak into forked workers.
// Sized generously above any realistic connection cap; past the cap,
// registration silently drops — the cost is a leaked-into-worker fd, the
// same behavior as before the registry existed.
constexpr size_t kMaxWorkerClosedFds = 1024;
int g_worker_closed_fds[kMaxWorkerClosedFds];
size_t g_worker_closed_count = 0;

}  // namespace

void RegisterFdClosedInWorkers(int fd) {
  if (fd < 0 || g_worker_closed_count >= kMaxWorkerClosedFds) return;
  g_worker_closed_fds[g_worker_closed_count++] = fd;
}

void UnregisterFdClosedInWorkers(int fd) {
  for (size_t i = 0; i < g_worker_closed_count; ++i) {
    if (g_worker_closed_fds[i] == fd) {
      g_worker_closed_fds[i] = g_worker_closed_fds[--g_worker_closed_count];
      return;
    }
  }
}

void InstallWorkerLimits(const WorkerLimits& limits) {
  if (limits.cpu_seconds > 0) {
    struct rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(std::ceil(limits.cpu_seconds));
    if (rl.rlim_cur < 1) rl.rlim_cur = 1;
    // Leave one second of hard-limit headroom so SIGXCPU (catchable,
    // classifiable) arrives before the unconditional SIGKILL.
    rl.rlim_max = rl.rlim_cur + 1;
    ::setrlimit(RLIMIT_CPU, &rl);
  }
  if (limits.address_space_bytes > 0) {
    struct rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(limits.address_space_bytes);
    rl.rlim_max = static_cast<rlim_t>(limits.address_space_bytes);
    ::setrlimit(RLIMIT_AS, &rl);
  }
}

bool WriteAllToFd(int fd, std::string_view data, int* errno_out) {
  if (errno_out != nullptr) *errno_out = 0;
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno_out != nullptr) *errno_out = errno;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool IsPeerGoneErrno(int err) { return err == EPIPE || err == ECONNRESET; }

void AppendLengthPrefixedFrame(std::string* out, std::string_view payload) {
  const uint32_t size = static_cast<uint32_t>(payload.size());
  char header[4];
  header[0] = static_cast<char>(size & 0xff);
  header[1] = static_cast<char>((size >> 8) & 0xff);
  header[2] = static_cast<char>((size >> 16) & 0xff);
  header[3] = static_cast<char>((size >> 24) & 0xff);
  out->append(header, sizeof(header));
  out->append(payload.data(), payload.size());
}

FrameTake TakeLengthPrefixedFrame(std::string* buffer, std::string* payload,
                                  size_t max_bytes) {
  if (buffer->size() < 4) return FrameTake::kNeedMore;
  const unsigned char* b =
      reinterpret_cast<const unsigned char*>(buffer->data());
  const uint32_t size = static_cast<uint32_t>(b[0]) |
                        (static_cast<uint32_t>(b[1]) << 8) |
                        (static_cast<uint32_t>(b[2]) << 16) |
                        (static_cast<uint32_t>(b[3]) << 24);
  if (size > max_bytes) return FrameTake::kMalformed;
  if (buffer->size() < 4 + static_cast<size_t>(size)) return FrameTake::kNeedMore;
  payload->assign(*buffer, 4, size);
  buffer->erase(0, 4 + static_cast<size_t>(size));
  return FrameTake::kFrame;
}

bool ReadLengthPrefixedFrameBlocking(int fd, std::string* payload,
                                     size_t max_bytes) {
  unsigned char header[4];
  size_t got = 0;
  while (got < sizeof(header)) {
    const ssize_t n = ::read(fd, header + got, sizeof(header) - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error
  }
  const uint32_t size = static_cast<uint32_t>(header[0]) |
                        (static_cast<uint32_t>(header[1]) << 8) |
                        (static_cast<uint32_t>(header[2]) << 16) |
                        (static_cast<uint32_t>(header[3]) << 24);
  if (size > max_bytes) return false;
  payload->resize(size);
  got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, payload->data() + got, size - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept {
  *this = std::move(other);
}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    CloseFds();
    pid_ = other.pid_;
    command_fd_ = other.command_fd_;
    result_fd_ = other.result_fd_;
    heartbeat_fd_ = other.heartbeat_fd_;
    exit_ = other.exit_;
    result_ = std::move(other.result_);
    other.pid_ = -1;
    other.command_fd_ = -1;
    other.result_fd_ = -1;
    other.heartbeat_fd_ = -1;
    other.exit_ = WorkerExit{};
  }
  return *this;
}

WorkerProcess::~WorkerProcess() {
  // A destroyed handle must not leak a live child or a zombie: kill hard
  // and reap synchronously. Supervisors normally reap via Poll first, so
  // this is the abnormal-path cleanup only.
  if (pid_ > 0 && !exit_.reaped) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
  }
  CloseFds();
}

void WorkerProcess::CloseFds() {
  CloseQuietly(&command_fd_);
  CloseQuietly(&result_fd_);
  CloseQuietly(&heartbeat_fd_);
}

void WorkerProcess::CloseCommand() { CloseQuietly(&command_fd_); }

bool WorkerProcess::WriteCommand(std::string_view data, double timeout_ms) {
  if (command_fd_ < 0) return false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              timeout_ms > 0 ? timeout_ms : 0));
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(command_fd_, data.data() + written, data.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Full pipe: the worker is slow or stalled. Never block — wait out
      // the deadline in small sleeps, giving up early if the worker died
      // (its read end is gone, so the pipe will never drain).
      if (Poll()) return false;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    return false;  // EPIPE (worker gone) or a hard error
  }
  return true;
}

namespace {

// Raw handles a successful fork hands back to the Spawn members.
struct SpawnedWorker {
  pid_t pid = -1;
  int command_fd = -1;
  int result_fd = -1;
  int heartbeat_fd = -1;
};

// Shared fork path behind both Spawn overloads. `with_command` adds the
// parent→child command pipe used by long-lived workers.
bool SpawnWorkerImpl(
    const WorkerLimits& limits, bool with_command,
    const std::function<int(int command_fd, int result_fd, int heartbeat_fd)>&
        body,
    SpawnedWorker* out, std::string* error) {
  int command_pipe[2] = {-1, -1};
  int result_pipe[2] = {-1, -1};
  int heartbeat_pipe[2] = {-1, -1};
  auto close_all = [&] {
    CloseQuietly(&command_pipe[0]);
    CloseQuietly(&command_pipe[1]);
    CloseQuietly(&result_pipe[0]);
    CloseQuietly(&result_pipe[1]);
    CloseQuietly(&heartbeat_pipe[0]);
    CloseQuietly(&heartbeat_pipe[1]);
  };
  if ((with_command && ::pipe(command_pipe) != 0) ||
      ::pipe(result_pipe) != 0 || ::pipe(heartbeat_pipe) != 0) {
    if (error != nullptr) *error = std::string("pipe: ") + std::strerror(errno);
    close_all();
    return false;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error != nullptr) *error = std::string("fork: ") + std::strerror(errno);
    close_all();
    return false;
  }

  if (pid == 0) {
    // Child. Only async-signal-safe calls until `body` takes over: close,
    // signal disposition, setrlimit.
    if (with_command) ::close(command_pipe[1]);
    ::close(result_pipe[0]);
    ::close(heartbeat_pipe[0]);
    // The serving tier's sockets die with the fork: an orphaned worker
    // holding the listening socket would make the restarted daemon's
    // bind fail, and one holding a connection would hide the crash from
    // that client.
    for (size_t i = 0; i < g_worker_closed_count; ++i) {
      ::close(g_worker_closed_fds[i]);
    }
    // A supervisor that died mid-run must not SIGPIPE the worker; the
    // write error is handled instead.
    ::signal(SIGPIPE, SIG_IGN);
    // Workers are their own delivery targets for SIGINT/SIGTERM: reset
    // any cooperative-cancel handler inherited from the parent.
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    InstallWorkerLimits(limits);
    int code = 127;
    code = body(with_command ? command_pipe[0] : -1, result_pipe[1],
                heartbeat_pipe[1]);
    ::_exit(code);
  }

  // Parent. The command write end is non-blocking so WriteCommand can
  // poll instead of wedging on a stalled worker's full pipe.
  if (with_command) {
    ::close(command_pipe[0]);
    SetNonBlocking(command_pipe[1]);
  }
  ::close(result_pipe[1]);
  ::close(heartbeat_pipe[1]);
  SetNonBlocking(result_pipe[0]);
  SetNonBlocking(heartbeat_pipe[0]);
  out->pid = pid;
  out->command_fd = with_command ? command_pipe[1] : -1;
  out->result_fd = result_pipe[0];
  out->heartbeat_fd = heartbeat_pipe[0];
  return true;
}

}  // namespace

bool WorkerProcess::Spawn(
    const WorkerLimits& limits,
    const std::function<int(int result_fd, int heartbeat_fd)>& body,
    WorkerProcess* out, std::string* error) {
  SpawnedWorker spawned;
  if (!SpawnWorkerImpl(
          limits, /*with_command=*/false,
          [&body](int, int result_fd, int heartbeat_fd) {
            return body(result_fd, heartbeat_fd);
          },
          &spawned, error)) {
    return false;
  }
  *out = WorkerProcess();
  out->pid_ = spawned.pid;
  out->command_fd_ = spawned.command_fd;
  out->result_fd_ = spawned.result_fd;
  out->heartbeat_fd_ = spawned.heartbeat_fd;
  return true;
}

bool WorkerProcess::Spawn(
    const WorkerLimits& limits,
    const std::function<int(int command_fd, int result_fd, int heartbeat_fd)>&
        body,
    WorkerProcess* out, std::string* error) {
  SpawnedWorker spawned;
  if (!SpawnWorkerImpl(limits, /*with_command=*/true, body, &spawned, error)) {
    return false;
  }
  *out = WorkerProcess();
  out->pid_ = spawned.pid;
  out->command_fd_ = spawned.command_fd;
  out->result_fd_ = spawned.result_fd;
  out->heartbeat_fd_ = spawned.heartbeat_fd;
  return true;
}

bool WorkerProcess::Poll() {
  if (pid_ <= 0 || exit_.reaped) return exit_.reaped;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, WNOHANG);
  } while (r < 0 && errno == EINTR);
  if (r == pid_) {
    exit_.reaped = true;
    if (WIFEXITED(status)) {
      exit_.exited = true;
      exit_.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      exit_.signaled = true;
      exit_.term_signal = WTERMSIG(status);
    }
    // The final result write may still sit in the pipe buffer.
    DrainResult();
  } else if (r < 0) {
    // ECHILD: someone else already reaped this pid (a wait(-1) elsewhere,
    // or SIGCHLD set to SIG_IGN). The child is gone either way; mark it
    // reaped with an unknown exit instead of polling a zombie that will
    // never appear.
    exit_.reaped = true;
    DrainResult();
  }
  return exit_.reaped;
}

bool WorkerProcess::WaitReaped(double timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              timeout_ms > 0 ? timeout_ms : 0));
  for (;;) {
    if (Poll()) return true;
    DrainHeartbeats();
    DrainResult();
    if (std::chrono::steady_clock::now() >= deadline) return Poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void WorkerProcess::DrainResult() { DrainFd(result_fd_, &result_); }

size_t WorkerProcess::DrainHeartbeats() {
  return DrainFd(heartbeat_fd_, nullptr);
}

void WorkerProcess::Kill(int sig) {
  if (pid_ > 0 && !exit_.reaped) ::kill(pid_, sig);
}

HeartbeatWriter::HeartbeatWriter(int fd, double interval_ms) {
  const auto interval = std::chrono::duration<double, std::milli>(
      interval_ms > 0 ? interval_ms : 25.0);
  thread_ = std::thread([this, fd, interval] {
    const char beat = '.';
    while (!stop_.load(std::memory_order_acquire)) {
      // A full pipe or dead supervisor is not the worker's problem;
      // compute on regardless.
      (void)!::write(fd, &beat, 1);
      std::this_thread::sleep_for(interval);
    }
  });
}

HeartbeatWriter::~HeartbeatWriter() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double BackoffDelayMs(int attempt, double base_ms, double cap_ms,
                      uint64_t seed, uint64_t stream) {
  const int exponent = attempt > 1 ? attempt - 1 : 0;
  double delay = base_ms * std::ldexp(1.0, exponent);
  if (cap_ms > 0 && delay > cap_ms) delay = cap_ms;
  // Two mixing rounds: one to decorrelate (seed, stream), one for the
  // draw itself — byte-compatible with the serve supervisor's original
  // Mix64 + UnitDraw sequence, so its retry timings are unchanged.
  uint64_t state = Mix64(Mix64(seed ^ stream));
  delay *= 0.5 + static_cast<double>(state >> 11) /
                     static_cast<double>(1ull << 53);
  return delay;
}

}  // namespace gqe
