#ifndef GQE_BASE_INSTANCE_H_
#define GQE_BASE_INSTANCE_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "base/atom.h"
#include "base/fact_store.h"
#include "base/flat_table.h"
#include "base/schema.h"
#include "base/term.h"

namespace gqe {

/// An instance over a schema: a set of facts (ground atoms) with
/// insertion-order storage, duplicate elimination, and inverted indexes
/// for join seeding (paper, Section 2: instances contain only constants —
/// here constants and labelled nulls).
///
/// Storage is two-layer: the row store `atoms()` keeps whole Atoms in
/// insertion order (the canonical order every serialization and merge
/// depends on), and a columnar FactStore mirrors the same facts as
/// struct-of-arrays columns for cache-friendly scans and open-addressing
/// duplicate checks. Fact indices are shared between the layers: index i
/// in `atoms()` is fact id i in the store.
///
/// A *database* is a finite instance; this class represents both (all
/// in-memory instances are finite portions).
class Instance {
 public:
  Instance() = default;

  /// Inserts a fact. Returns true if the fact was new. Aborts in debug
  /// builds if the atom contains variables.
  bool Insert(const Atom& atom);

  /// Inserts all facts of another instance.
  void InsertAll(const Instance& other);
  void InsertAll(const std::vector<Atom>& atoms);

  bool Contains(const Atom& atom) const;

  /// Index of the fact equal to `atom`, or -1 if absent. The columnar
  /// replacement for `Contains` + a separate index lookup on hot paths.
  int64_t Find(const Atom& atom) const;

  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  /// All facts, in insertion order. Indices into this vector are stable.
  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(size_t index) const { return atoms_[index]; }

  /// Columnar accessors: predicate and argument span of fact `index`
  /// without touching the row store (one contiguous Term column).
  PredicateId predicate_of(uint32_t index) const {
    return store_.predicate(index);
  }
  std::span<const Term> args_of(uint32_t index) const {
    return store_.args(index);
  }

  /// The columnar mirror itself (read-only).
  const FactStore& store() const { return store_; }

  /// Pre-sizes all layers for `facts` facts holding `terms` argument
  /// positions in total (workload fingerprint / checkpoint header hint).
  void Reserve(size_t facts, size_t terms);

  /// Indices of facts with the given predicate.
  const std::vector<uint32_t>& FactsWithPredicate(PredicateId pred) const;

  /// Indices of facts with the given predicate whose argument at
  /// `position` equals `term`.
  const std::vector<uint32_t>& FactsWith(PredicateId pred, int position,
                                         Term term) const;

  /// dom(I): the distinct ground terms appearing in facts, in order of
  /// first appearance.
  const std::vector<Term>& ActiveDomain() const { return domain_; }

  bool InDomain(Term t) const { return domain_set_.contains(t); }

  /// I|_T: the restriction of the instance to facts that mention only
  /// terms of `keep` (paper, Section 2).
  Instance Restrict(const std::vector<Term>& keep) const;

  /// The set of predicates with at least one fact.
  Schema InducedSchema() const;

  /// Facts mentioning `t` (indices, ascending, no duplicates).
  const std::vector<uint32_t>& FactsMentioning(Term t) const;

  /// All facts whose terms are all contained in `elements`.
  std::vector<Atom> AtomsOver(const std::vector<Term>& elements) const;

  /// Structural equality as sets of facts.
  bool SetEquals(const Instance& other) const;

  /// True if every fact of this instance is a fact of `other`.
  bool SubsetOf(const Instance& other) const;

  /// Total rehashes across the dedup and inverted indexes. Debug guards
  /// snapshot this to assert no engine holds slot references across a
  /// growth window (fact *indices* are always stable; table slots never
  /// are).
  uint64_t IndexRehashes() const;

  std::string ToString() const;

 private:
  static uint64_t MakePosKey(PredicateId pred, int position, Term term) {
    // pred: 24 bits used in practice, position: 8 bits, term: 32 bits.
    return (static_cast<uint64_t>(pred) << 40) |
           (static_cast<uint64_t>(position & 0xff) << 32) | term.bits();
  }

  std::vector<Atom> atoms_;  // row store: canonical insertion order
  FactStore store_;          // columnar mirror + open-addressing dedup
  // Dense per-predicate postings (predicate ids are small and dense);
  // pred_order_ records first appearance for deterministic iteration.
  std::vector<std::vector<uint32_t>> by_predicate_;
  std::vector<PredicateId> pred_order_;
  FlatMap<uint64_t, std::vector<uint32_t>> by_position_;
  std::vector<Term> domain_;
  FlatSet<Term> domain_set_;
  FlatMap<Term, std::vector<uint32_t>> by_term_;
};

std::ostream& operator<<(std::ostream& os, const Instance& instance);

}  // namespace gqe

#endif  // GQE_BASE_INSTANCE_H_
