#ifndef GQE_BASE_INSTANCE_H_
#define GQE_BASE_INSTANCE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/atom.h"
#include "base/schema.h"
#include "base/term.h"

namespace gqe {

/// An instance over a schema: a set of facts (ground atoms) with
/// insertion-order storage, duplicate elimination, and inverted indexes
/// for join seeding (paper, Section 2: instances contain only constants —
/// here constants and labelled nulls).
///
/// A *database* is a finite instance; this class represents both (all
/// in-memory instances are finite portions).
class Instance {
 public:
  Instance() = default;

  /// Inserts a fact. Returns true if the fact was new. Aborts in debug
  /// builds if the atom contains variables.
  bool Insert(const Atom& atom);

  /// Inserts all facts of another instance.
  void InsertAll(const Instance& other);
  void InsertAll(const std::vector<Atom>& atoms);

  bool Contains(const Atom& atom) const;

  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  /// All facts, in insertion order. Indices into this vector are stable.
  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(size_t index) const { return atoms_[index]; }

  /// Indices of facts with the given predicate.
  const std::vector<uint32_t>& FactsWithPredicate(PredicateId pred) const;

  /// Indices of facts with the given predicate whose argument at
  /// `position` equals `term`.
  const std::vector<uint32_t>& FactsWith(PredicateId pred, int position,
                                         Term term) const;

  /// dom(I): the distinct ground terms appearing in facts, in order of
  /// first appearance.
  const std::vector<Term>& ActiveDomain() const { return domain_; }

  bool InDomain(Term t) const { return domain_set_.count(t) > 0; }

  /// I|_T: the restriction of the instance to facts that mention only
  /// terms of `keep` (paper, Section 2).
  Instance Restrict(const std::vector<Term>& keep) const;

  /// The set of predicates with at least one fact.
  Schema InducedSchema() const;

  /// Facts mentioning `t` (indices, ascending, no duplicates).
  const std::vector<uint32_t>& FactsMentioning(Term t) const;

  /// All facts whose terms are all contained in `elements`.
  std::vector<Atom> AtomsOver(const std::vector<Term>& elements) const;

  /// Structural equality as sets of facts.
  bool SetEquals(const Instance& other) const;

  /// True if every fact of this instance is a fact of `other`.
  bool SubsetOf(const Instance& other) const;

  std::string ToString() const;

 private:
  struct PosKey {
    uint64_t packed;
    bool operator==(const PosKey& o) const { return packed == o.packed; }
  };
  struct PosKeyHash {
    size_t operator()(const PosKey& k) const {
      return static_cast<size_t>(k.packed * 0x9e3779b97f4a7c15ull >> 13);
    }
  };
  static PosKey MakePosKey(PredicateId pred, int position, Term term) {
    // pred: 24 bits used in practice, position: 8 bits, term: 32 bits.
    return PosKey{(static_cast<uint64_t>(pred) << 40) |
                  (static_cast<uint64_t>(position & 0xff) << 32) |
                  term.bits()};
  }

  std::vector<Atom> atoms_;
  std::unordered_set<Atom, AtomHash> atom_set_;
  std::unordered_map<PredicateId, std::vector<uint32_t>> by_predicate_;
  std::unordered_map<PosKey, std::vector<uint32_t>, PosKeyHash> by_position_;
  std::vector<Term> domain_;
  std::unordered_set<Term> domain_set_;
  std::unordered_map<Term, std::vector<uint32_t>> by_term_;
};

std::ostream& operator<<(std::ostream& os, const Instance& instance);

}  // namespace gqe

#endif  // GQE_BASE_INSTANCE_H_
