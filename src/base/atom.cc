#include "base/atom.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace gqe {

Atom::Atom(PredicateId predicate, std::vector<Term> args)
    : predicate_(predicate), args_(std::move(args)) {
  assert(predicates::Arity(predicate_) ==
         static_cast<int>(args_.size()));
}

Atom Atom::Make(std::string_view predicate_name, std::vector<Term> args) {
  const PredicateId id =
      predicates::Intern(predicate_name, static_cast<int>(args.size()));
  return Atom(id, std::move(args));
}

bool Atom::IsGround() const {
  for (Term t : args_) {
    if (t.IsVariable()) return false;
  }
  return true;
}

void Atom::CollectVariables(std::vector<Term>* out) const {
  for (Term t : args_) {
    if (t.IsVariable() &&
        std::find(out->begin(), out->end(), t) == out->end()) {
      out->push_back(t);
    }
  }
}

void Atom::CollectGroundTerms(std::vector<Term>* out) const {
  for (Term t : args_) {
    if (t.IsGround() &&
        std::find(out->begin(), out->end(), t) == out->end()) {
      out->push_back(t);
    }
  }
}

bool Atom::ContainsAll(const std::vector<Term>& terms) const {
  for (Term t : terms) {
    if (!Contains(t)) return false;
  }
  return true;
}

bool Atom::Contains(Term t) const {
  return std::find(args_.begin(), args_.end(), t) != args_.end();
}

std::string Atom::ToString() const {
  std::string out(predicates::Name(predicate_));
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ",";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Atom& atom) {
  return os << atom.ToString();
}

size_t AtomHash::operator()(const Atom& atom) const {
  size_t h = static_cast<size_t>(atom.predicate()) * 0x9e3779b97f4a7c15ull;
  for (Term t : atom.args()) {
    h ^= TermHash{}(t) + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

std::vector<Term> VariablesOf(const std::vector<Atom>& atoms) {
  std::vector<Term> vars;
  for (const Atom& atom : atoms) atom.CollectVariables(&vars);
  return vars;
}

std::vector<Term> GroundTermsOf(const std::vector<Atom>& atoms) {
  std::vector<Term> out;
  for (const Atom& atom : atoms) atom.CollectGroundTerms(&out);
  return out;
}

std::string AtomsToString(const std::vector<Atom>& atoms) {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].ToString();
  }
  return out;
}

}  // namespace gqe
