#include "base/schema.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <ostream>
#include <unordered_map>

#include "base/interner.h"

namespace gqe {
namespace predicates {
namespace {

struct Registry {
  std::deque<int> arities;  // indexed by PredicateId
};

Registry& GetRegistry() {
  static Registry* const kRegistry = new Registry();
  return *kRegistry;
}

}  // namespace

PredicateId Intern(std::string_view name, int arity) {
  Interner& interner = Interner::Global();
  const size_t before = interner.PoolSize(Interner::Pool::kPredicate);
  const PredicateId id = interner.Intern(Interner::Pool::kPredicate, name);
  Registry& registry = GetRegistry();
  if (id < before) {
    if (registry.arities[id] != arity) {
      std::fprintf(stderr,
                   "gqe: predicate '%.*s' re-registered with arity %d "
                   "(was %d)\n",
                   static_cast<int>(name.size()), name.data(), arity,
                   registry.arities[id]);
      std::abort();
    }
    return id;
  }
  registry.arities.push_back(arity);
  return id;
}

PredicateId Lookup(std::string_view name) {
  // Intern would create the entry; instead check pool membership by
  // probing names. The interner has no lookup-without-insert API, so we
  // keep a shadow map here.
  static std::unordered_map<std::string, PredicateId>* const kByName =
      new std::unordered_map<std::string, PredicateId>();
  auto it = kByName->find(std::string(name));
  if (it != kByName->end()) return it->second;
  // Rebuild lazily from the registry (names are append-only).
  Interner& interner = Interner::Global();
  const size_t n = interner.PoolSize(Interner::Pool::kPredicate);
  for (PredicateId id = static_cast<PredicateId>(kByName->size()); id < n;
       ++id) {
    kByName->emplace(
        std::string(interner.Name(Interner::Pool::kPredicate, id)), id);
  }
  it = kByName->find(std::string(name));
  if (it != kByName->end()) return it->second;
  return static_cast<PredicateId>(-1);
}

int Arity(PredicateId id) { return GetRegistry().arities[id]; }

std::string_view Name(PredicateId id) {
  return Interner::Global().Name(Interner::Pool::kPredicate, id);
}

}  // namespace predicates

PredicateId Schema::Add(std::string_view name, int arity) {
  const PredicateId id = predicates::Intern(name, arity);
  Add(id);
  return id;
}

void Schema::Add(PredicateId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) ids_.insert(it, id);
}

bool Schema::Contains(PredicateId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

int Schema::MaxArity() const {
  int max_arity = 0;
  for (PredicateId id : ids_) {
    max_arity = std::max(max_arity, predicates::Arity(id));
  }
  return max_arity;
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::string(predicates::Name(ids_[i]));
    out += "/" + std::to_string(predicates::Arity(ids_[i]));
  }
  out += "}";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Schema& schema) {
  return os << schema.ToString();
}

}  // namespace gqe
