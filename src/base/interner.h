#ifndef GQE_BASE_INTERNER_H_
#define GQE_BASE_INTERNER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "base/arena.h"
#include "base/flat_table.h"

namespace gqe {

/// A process-wide string interner with separate pools for constants,
/// variables and predicate names. Interning gives every name a dense
/// 30-bit id so that terms and predicates fit in 32 bits and compare in
/// one instruction.
///
/// Storage is a bump-pointer arena per pool (name bytes are copied once
/// and never move, so the string_views handed out stay valid for the
/// process lifetime) indexed by an open-addressing FlatMap. Workloads
/// with known symbol counts should call Reserve up front: id assignment
/// is insertion-ordered and unaffected by table growth, but reserving
/// skips the intermediate rehashes that used to dominate instance-load
/// profiles.
///
/// The interner is created on first use and intentionally never destroyed
/// (leak-on-exit pattern), so it is safe to use from static contexts.
/// It is not thread-safe; parallel engine phases intern before fan-out.
class Interner {
 public:
  /// The distinct name pools. Identical strings in different pools receive
  /// independent ids (so a constant `a` and a variable `a` can coexist).
  enum class Pool { kConstant = 0, kVariable = 1, kPredicate = 2 };

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the singleton instance.
  static Interner& Global();

  /// Interns `name` in `pool` and returns its id. Idempotent.
  uint32_t Intern(Pool pool, std::string_view name);

  /// Returns the name for an id previously returned by Intern.
  std::string_view Name(Pool pool, uint32_t id) const;

  /// Returns the number of interned names in `pool`.
  size_t PoolSize(Pool pool) const;

  /// Pre-sizes `pool` for `names` entries (workload-fingerprint hint) so
  /// bulk loads pay no intermediate index rehashes.
  void Reserve(Pool pool, size_t names);

  /// Grow/cleanup rehashes of `pool`'s index so far. Debug guards snapshot
  /// this to assert no engine holds lookups across a rehash window.
  uint64_t Rehashes(Pool pool) const;

  /// Returns a fresh variable id whose name does not collide with any
  /// interned variable (names look like `_v17`).
  uint32_t FreshVariable();

  /// Returns a fresh constant id (names look like `_c17`).
  uint32_t FreshConstant();

  /// The fresh-name counter backing FreshVariable/FreshConstant. Exposed
  /// so snapshots (base/serialize) can persist and restore it: a resumed
  /// run must not re-issue fresh names the checkpointed run already used.
  uint64_t fresh_counter() const { return fresh_counter_; }
  void set_fresh_counter(uint64_t value) { fresh_counter_ = value; }

 private:
  Interner() = default;

  struct PoolData {
    // Name bytes live in the arena and never move, so the string_views in
    // `names` (and the map keys, which alias them) stay valid as the pool
    // grows. Ids are indices into `names`, assigned in insertion order.
    Arena bytes;
    std::vector<std::string_view> names;
    FlatMap<std::string_view, uint32_t> index;
  };

  PoolData& GetPool(Pool pool) { return pools_[static_cast<int>(pool)]; }
  const PoolData& GetPool(Pool pool) const {
    return pools_[static_cast<int>(pool)];
  }

  PoolData pools_[3];
  uint64_t fresh_counter_ = 0;
};

}  // namespace gqe

#endif  // GQE_BASE_INTERNER_H_
