#include "base/term.h"

#include <atomic>
#include <cassert>
#include <ostream>

#include "base/interner.h"

namespace gqe {

namespace {
constexpr uint32_t kTagShift = 30;
uint32_t MakeBits(Term::Kind kind, uint32_t id) {
  assert(id < (1u << 30));
  return (static_cast<uint32_t>(kind) << kTagShift) | id;
}
}  // namespace

Term Term::Constant(std::string_view name) {
  return Term(MakeBits(Kind::kConstant,
                       Interner::Global().Intern(
                           Interner::Pool::kConstant, name)));
}

Term Term::Variable(std::string_view name) {
  return Term(MakeBits(Kind::kVariable,
                       Interner::Global().Intern(
                           Interner::Pool::kVariable, name)));
}

Term Term::Null(uint32_t id) { return Term(MakeBits(Kind::kNull, id)); }

Term Term::FreshNull() {
  static uint32_t counter = 0;
  return Null(counter++);
}

Term Term::FreshVariable() {
  return Term(MakeBits(Kind::kVariable, Interner::Global().FreshVariable()));
}

std::string Term::ToString() const {
  switch (kind()) {
    case Kind::kConstant:
      return std::string(
          Interner::Global().Name(Interner::Pool::kConstant, id()));
    case Kind::kVariable:
      return std::string(
          Interner::Global().Name(Interner::Pool::kVariable, id()));
    case Kind::kNull:
      return "_:n" + std::to_string(id());
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Term term) {
  return os << term.ToString();
}

}  // namespace gqe
