#include "base/term.h"

#include <atomic>
#include <cassert>
#include <ostream>

#include "base/interner.h"

namespace gqe {

namespace {
constexpr uint32_t kTagShift = 30;
uint32_t MakeBits(Term::Kind kind, uint32_t id) {
  assert(id < (1u << 30));
  return (static_cast<uint32_t>(kind) << kTagShift) | id;
}
}  // namespace

Term Term::Constant(std::string_view name) {
  return Term(MakeBits(Kind::kConstant,
                       Interner::Global().Intern(
                           Interner::Pool::kConstant, name)));
}

Term Term::Variable(std::string_view name) {
  return Term(MakeBits(Kind::kVariable,
                       Interner::Global().Intern(
                           Interner::Pool::kVariable, name)));
}

Term Term::Null(uint32_t id) { return Term(MakeBits(Kind::kNull, id)); }

namespace {
std::atomic<uint32_t> null_counter{0};
}  // namespace

Term Term::FreshNull() {
  return Null(null_counter.fetch_add(1, std::memory_order_relaxed));
}

uint32_t Term::NextNullId() {
  return null_counter.load(std::memory_order_relaxed);
}

void Term::SetNextNullId(uint32_t id) {
  null_counter.store(id, std::memory_order_relaxed);
}

Term Term::FreshVariable() {
  return Term(MakeBits(Kind::kVariable, Interner::Global().FreshVariable()));
}

std::string Term::ToString() const {
  switch (kind()) {
    case Kind::kConstant:
      return std::string(
          Interner::Global().Name(Interner::Pool::kConstant, id()));
    case Kind::kVariable:
      return std::string(
          Interner::Global().Name(Interner::Pool::kVariable, id()));
    case Kind::kNull:
      return "_:n" + std::to_string(id());
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Term term) {
  return os << term.ToString();
}

}  // namespace gqe
