#include "base/fact_store.h"

#include <cstring>

namespace gqe {

FactStore::FactStore() {
  index_.ops().store = this;
  offsets_.push_back(0);
}

FactStore::FactStore(const FactStore& other)
    : preds_(other.preds_),
      offsets_(other.offsets_),
      args_(other.args_),
      hashes_(other.hashes_),
      index_(other.index_) {
  index_.ops().store = this;
}

FactStore::FactStore(FactStore&& other) noexcept
    : preds_(std::move(other.preds_)),
      offsets_(std::move(other.offsets_)),
      args_(std::move(other.args_)),
      hashes_(std::move(other.hashes_)),
      index_(std::move(other.index_)) {
  index_.ops().store = this;
  other.offsets_.push_back(0);
  other.index_.ops().store = &other;
}

FactStore& FactStore::operator=(const FactStore& other) {
  if (this == &other) return *this;
  preds_ = other.preds_;
  offsets_ = other.offsets_;
  args_ = other.args_;
  hashes_ = other.hashes_;
  index_ = other.index_;
  index_.ops().store = this;
  return *this;
}

FactStore& FactStore::operator=(FactStore&& other) noexcept {
  if (this == &other) return *this;
  preds_ = std::move(other.preds_);
  offsets_ = std::move(other.offsets_);
  args_ = std::move(other.args_);
  hashes_ = std::move(other.hashes_);
  index_ = std::move(other.index_);
  index_.ops().store = this;
  other.offsets_.push_back(0);
  other.index_.ops().store = &other;
  return *this;
}

uint64_t FactStore::HashFact(PredicateId pred, const Term* args,
                             size_t arity) {
  uint64_t h = HashShuffle(0x9e3779b97f4a7c15ULL ^ pred);
  for (size_t i = 0; i < arity; ++i) {
    h = HashShuffle(h ^ args[i].bits());
  }
  return h;
}

bool FactStore::EqualsRef(uint32_t id, const FactRef& ref) const {
  if (preds_[id] != ref.pred) return false;
  const uint32_t begin = offsets_[id];
  if (offsets_[id + 1] - begin != ref.arity) return false;
  return ref.arity == 0 ||
         std::memcmp(args_.data() + begin, ref.args,
                     ref.arity * sizeof(Term)) == 0;
}

std::pair<uint32_t, bool> FactStore::InsertUnique(PredicateId pred,
                                                  const Term* args,
                                                  uint32_t arity) {
  FactRef ref{pred, args, arity, HashFact(pred, args, arity)};
  auto [slot, fresh] = index_.InsertWith(ref, [&]() {
    const uint32_t new_id = static_cast<uint32_t>(preds_.size());
    preds_.push_back(pred);
    args_.insert(args_.end(), args, args + arity);
    offsets_.push_back(static_cast<uint32_t>(args_.size()));
    hashes_.push_back(ref.hash);
    return new_id;
  });
  return {*slot, fresh};
}

int64_t FactStore::Find(PredicateId pred, const Term* args,
                        uint32_t arity) const {
  FactRef ref{pred, args, arity, HashFact(pred, args, arity)};
  const uint32_t* slot = index_.find(ref);
  return slot == nullptr ? -1 : static_cast<int64_t>(*slot);
}

void FactStore::Reserve(size_t facts, size_t terms) {
  preds_.reserve(facts);
  offsets_.reserve(facts + 1);
  args_.reserve(terms);
  hashes_.reserve(facts);
  index_.reserve(facts);
}

void FactStore::clear() {
  preds_.clear();
  offsets_.clear();
  offsets_.push_back(0);
  args_.clear();
  hashes_.clear();
  index_.clear();
}

}  // namespace gqe
