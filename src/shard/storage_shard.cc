#include "shard/storage_shard.h"

#include <dirent.h>
#include <signal.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <utility>

#include "base/serialize.h"
#include "shard/exchange.h"

namespace gqe {

namespace {

/// Storage-worker exit codes, aligned with the fork-per-round shard
/// workers and serve/worker.h so operators see one vocabulary.
constexpr int kStorageExitOk = 0;
constexpr int kStorageExitWriteError = 3;
constexpr int kStorageExitPeerGone = 4;
/// The command stream failed to decode — the coordinator is insane or the
/// pipe is garbage; for a long-lived worker both mean "exit, let the
/// coordinator's death classification take over".
constexpr int kStorageExitProtocol = 5;
constexpr int kStorageExitOom = 12;

/// "No generation": fragment checkpoints are numbered by round boundary,
/// and ~0 marks the absence of one (a fresh slot, a failed write).
constexpr uint64_t kNoGen = ~0ull;
/// A fragment rebuilt with no disk checkpoint at all — pure exchange-log
/// replay from round zero.
constexpr uint64_t kScratchGen = kNoGen - 1;

/// Upper bound on one pipe frame. Far above any real exchange; its only
/// job is making a garbage length prefix a detected protocol failure
/// instead of an allocation bomb.
constexpr size_t kMaxFrameBytes = 1ull << 30;

/// Injected-OOM geometry (the shard/serve chaos idiom): cap the address
/// space well below the probe so the bad_alloc is deterministic no matter
/// how much the forked worker already mapped copy-on-write.
constexpr size_t kOomFaultLimitBytes = 64ull << 20;
constexpr size_t kOomFaultProbeBytes = 128ull << 20;

// Minimum encoded bytes per claimed element (absurd-count guards for
// CRC-valid but hostile payloads, the exchange.cc idiom).
constexpr uint64_t kMinAtomBytes = 8;       // predicate + arity
constexpr uint64_t kMinUnitBytes = 8 + 4 + 8 + 8;
constexpr uint64_t kMinGroupBytes = 4 + 8 + 8 + 8;
constexpr uint64_t kMinIndexBytes = 8;
constexpr uint64_t kMinLogBytes = 8;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Owner of a fact given by content: both sides of the protocol compute
/// ownership from FactStore::HashFact, so a coordinator holding a global
/// index and a worker holding a decoded atom always agree.
uint32_t OwnerOfAtom(const Atom& atom, uint32_t num_shards) {
  return ShardOfContentHash(
      FactStore::HashFact(atom.predicate(), atom.args().data(),
                          atom.args().size()),
      num_shards);
}

/// One step of the acknowledged-ownership-manifest fold. Folding the
/// (content hash, global index) pairs of a shard's owned facts in
/// ascending index order gives a fingerprint both sides compute
/// independently: the coordinator over its instance prefix, the worker
/// over its fragment. An ack whose (count, hash) disagrees is rejected
/// before the fragment is ever trusted for discovery.
uint64_t FoldManifest(uint64_t h, uint64_t content_hash,
                      uint64_t global_index) {
  return Mix64(h ^ Mix64(content_hash ^ global_index));
}

// ---------------------------------------------------------------------------
// Wire + file formats.
//
// Commands and replies travel length-prefixed over the worker pipes inside
// CRC snapshot envelopes (kinds 7/8); they are same-process-image formats,
// so atoms are encoded without an interner section (DecodeAtomVector still
// validates predicates/constants against the forked interner, and accepts
// the labelled nulls the chase mints after fork). Fragment checkpoints and
// retained exchange logs (kinds 9/10) are cross-restart files and embed
// the interner.
// ---------------------------------------------------------------------------

struct StorageCommand {
  enum class Type : uint32_t {
    /// Full fragment seed: every owned (global index, atom) pair plus the
    /// round frontier. Legal only for a worker that has never acked under
    /// this layout — past that point the coordinator refuses to reseed,
    /// which is what makes rebuild failures observable instead of being
    /// papered over by re-shipping state that might itself be the bug.
    kSeed = 1,
    /// One round's delta: the worker appends its owned facts at their
    /// global indexes and replaces the replicated frontier.
    kDelta = 2,
    /// Crash recovery: retained exchange logs ride down; the worker picks
    /// its newest usable disk checkpoint and replays forward.
    kRebuild = 3,
    /// Run this round's trigger discovery against fragment + frontier.
    kDiscover = 4,
  };

  Type type = Type::kSeed;
  /// Coordinator-issued, strictly monotonic across every command of the
  /// run; the reply must echo it, so a late reply from a superseded
  /// attempt can never be mistaken for the current one.
  uint64_t sequence = 0;
  uint64_t boundary = 0;
  uint32_t num_shards = 1;
  /// Injected fault (StorageFault::Kind) to execute before processing,
  /// or -1. Riding inside the command keeps chaos deterministic: the
  /// fault fires exactly when the matched command arrives.
  int32_t inject_fault = -1;
  uint64_t delta_start = 0;
  uint64_t delta_end = 0;
  /// kSeed: owned facts (parallel vectors, ascending global index).
  std::vector<uint64_t> seed_indexes;
  std::vector<Atom> seed_atoms;
  /// kSeed/kDelta: the round frontier (== the delta, replicated).
  std::vector<Atom> frontier;
  /// kRebuild: raw retained log file bytes, ascending boundary.
  std::vector<std::string> logs;
  /// kDiscover: the round's units in canonical order.
  std::vector<ChaseDiscoveryUnit> units;
};

struct StorageReplyGroup {
  uint32_t unit_index = 0;
  uint64_t fact_index = 0;
  /// Ground side atoms the emitting shard does not own and therefore
  /// could not check; the coordinator confirms every ground side against
  /// the global instance before merging, so this field is diagnostic.
  std::vector<Atom> cond;
  /// Global indexes of matching free-side facts owned by the emitting
  /// shard, strictly ascending. Substitutions are NOT shipped: the
  /// coordinator re-binds each candidate against its own instance, which
  /// both halves the exchange volume and turns any fabricated candidate
  /// into a validation failure instead of a wrong merge.
  std::vector<uint64_t> side_indexes;
};

struct StorageReply {
  enum class Type : uint32_t { kAck = 1, kCandidates = 2 };

  Type type = Type::kAck;
  uint64_t sequence = 0;
  uint64_t boundary = 0;
  uint32_t shard = 0;
  uint32_t num_shards = 1;
  /// kAck: load outcome. ok=false with an intact envelope means the
  /// worker itself judged its state unusable (rebuild ladder exhausted).
  bool ok = true;
  std::string error;
  uint64_t fragment_count = 0;
  uint64_t fragment_hash = 0;
  /// Newest / oldest fragment generations durable on disk after this
  /// load. The oldest bounds exchange-log pruning: a log is deletable
  /// only when no shard's retained checkpoint could need it to replay.
  uint64_t checkpoint_gen = kNoGen;
  uint64_t oldest_checkpoint_gen = kNoGen;
  /// The generation this load rebuilt from (kNoGen: not a rebuild;
  /// kScratchGen: log-only replay from round zero).
  uint64_t rebuilt_from = kNoGen;
  uint64_t rss_kb = 0;
  /// kCandidates: groups in strictly increasing (unit, fact) order.
  std::vector<StorageReplyGroup> groups;
};

/// A shard's fragment checkpoint: its owned slice of the instance (global
/// indexes + atoms, ascending) and the frontier of the boundary round,
/// which is exactly the state a respawned worker needs to serve discovery
/// at that boundary with no log replay.
struct StorageFragmentFile {
  uint32_t shard = 0;
  uint32_t num_shards = 1;
  uint64_t boundary = 0;
  uint64_t delta_start = 0;
  uint64_t delta_end = 0;
  std::vector<uint64_t> indexes;
  std::vector<Atom> atoms;
  std::vector<Atom> frontier;
};

/// One retained per-round exchange log: the round's delta facts. Written
/// (tmp+fsync+rename) before any load command for the boundary goes out,
/// so by the time a shard acks the boundary, the bytes needed to replay
/// it into a respawned shard are already durable.
struct StorageLogFile {
  uint32_t num_shards = 1;
  uint64_t boundary = 0;
  uint64_t delta_start = 0;
  uint64_t delta_end = 0;
  std::vector<Atom> delta;
};

void EncodeUnits(const std::vector<ChaseDiscoveryUnit>& units,
                 BinaryWriter* writer) {
  writer->WriteU64(units.size());
  for (const ChaseDiscoveryUnit& unit : units) {
    writer->WriteU64(unit.tgd_index);
    writer->WriteI32(unit.anchor);
    writer->WriteU64(unit.delta_begin);
    writer->WriteU64(unit.delta_end);
  }
}

bool DecodeUnits(BinaryReader* reader, std::vector<ChaseDiscoveryUnit>* out) {
  uint64_t count = 0;
  if (!reader->ReadU64(&count)) return false;
  if (count > reader->remaining() / kMinUnitBytes + 1) return false;
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ChaseDiscoveryUnit unit;
    uint64_t tgd = 0;
    int32_t anchor = 0;
    reader->ReadU64(&tgd);
    reader->ReadI32(&anchor);
    uint64_t begin = 0;
    uint64_t end = 0;
    reader->ReadU64(&begin);
    if (!reader->ReadU64(&end)) return false;
    unit.tgd_index = tgd;
    unit.anchor = anchor;
    unit.delta_begin = begin;
    unit.delta_end = end;
    out->push_back(unit);
  }
  return true;
}

std::string EncodeStorageCommand(const StorageCommand& command) {
  BinaryWriter writer;
  writer.WriteU32(static_cast<uint32_t>(command.type));
  writer.WriteU64(command.sequence);
  writer.WriteU64(command.boundary);
  writer.WriteU32(command.num_shards);
  writer.WriteI32(command.inject_fault);
  writer.WriteU64(command.delta_start);
  writer.WriteU64(command.delta_end);
  writer.WriteU64(command.seed_indexes.size());
  for (uint64_t index : command.seed_indexes) writer.WriteU64(index);
  EncodeAtomVector(command.seed_atoms, &writer);
  EncodeAtomVector(command.frontier, &writer);
  writer.WriteU64(command.logs.size());
  for (const std::string& log : command.logs) writer.WriteString(log);
  EncodeUnits(command.units, &writer);
  return WrapSnapshot(kSnapshotKindStorageCommand, writer.buffer());
}

SnapshotStatus DecodeStorageCommand(std::string_view bytes,
                                    StorageCommand* out) {
  std::string_view payload;
  SnapshotStatus status =
      UnwrapSnapshot(bytes, kSnapshotKindStorageCommand, &payload);
  if (!status.ok()) return status;
  BinaryReader reader(payload);
  StorageCommand command;
  uint32_t type = 0;
  reader.ReadU32(&type);
  reader.ReadU64(&command.sequence);
  reader.ReadU64(&command.boundary);
  reader.ReadU32(&command.num_shards);
  reader.ReadI32(&command.inject_fault);
  reader.ReadU64(&command.delta_start);
  uint64_t index_count = 0;
  reader.ReadU64(&command.delta_end);
  if (!reader.ReadU64(&index_count)) {
    return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                "storage command: truncated header");
  }
  if (type < 1 || type > 4) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage command: unknown type");
  }
  command.type = static_cast<StorageCommand::Type>(type);
  if (index_count > reader.remaining() / kMinIndexBytes + 1) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage command: absurd index count");
  }
  command.seed_indexes.reserve(index_count);
  for (uint64_t i = 0; i < index_count; ++i) {
    uint64_t index = 0;
    if (!reader.ReadU64(&index)) {
      return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                  "storage command: truncated indexes");
    }
    command.seed_indexes.push_back(index);
  }
  status = DecodeAtomVector(&reader, &command.seed_atoms);
  if (!status.ok()) return status;
  status = DecodeAtomVector(&reader, &command.frontier);
  if (!status.ok()) return status;
  uint64_t log_count = 0;
  if (!reader.ReadU64(&log_count)) {
    return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                "storage command: truncated log count");
  }
  if (log_count > reader.remaining() / kMinLogBytes + 1) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage command: absurd log count");
  }
  command.logs.reserve(log_count);
  for (uint64_t i = 0; i < log_count; ++i) {
    std::string log;
    if (!reader.ReadString(&log)) {
      return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                  "storage command: truncated log");
    }
    command.logs.push_back(std::move(log));
  }
  if (!DecodeUnits(&reader, &command.units)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage command: bad units");
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage command: trailing or missing bytes");
  }
  if (command.seed_indexes.size() != command.seed_atoms.size()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage command: seed index/atom mismatch");
  }
  *out = std::move(command);
  return SnapshotStatus::Ok();
}

std::string EncodeStorageReply(const StorageReply& reply) {
  BinaryWriter writer;
  writer.WriteU32(static_cast<uint32_t>(reply.type));
  writer.WriteU64(reply.sequence);
  writer.WriteU64(reply.boundary);
  writer.WriteU32(reply.shard);
  writer.WriteU32(reply.num_shards);
  writer.WriteBool(reply.ok);
  writer.WriteString(reply.error);
  writer.WriteU64(reply.fragment_count);
  writer.WriteU64(reply.fragment_hash);
  writer.WriteU64(reply.checkpoint_gen);
  writer.WriteU64(reply.oldest_checkpoint_gen);
  writer.WriteU64(reply.rebuilt_from);
  writer.WriteU64(reply.rss_kb);
  writer.WriteU64(reply.groups.size());
  for (const StorageReplyGroup& group : reply.groups) {
    writer.WriteU32(group.unit_index);
    writer.WriteU64(group.fact_index);
    EncodeAtomVector(group.cond, &writer);
    writer.WriteU64(group.side_indexes.size());
    for (uint64_t side : group.side_indexes) writer.WriteU64(side);
  }
  return WrapSnapshot(kSnapshotKindStorageReply, writer.buffer());
}

SnapshotStatus DecodeStorageReply(std::string_view bytes, StorageReply* out) {
  std::string_view payload;
  SnapshotStatus status =
      UnwrapSnapshot(bytes, kSnapshotKindStorageReply, &payload);
  if (!status.ok()) return status;
  BinaryReader reader(payload);
  StorageReply reply;
  uint32_t type = 0;
  reader.ReadU32(&type);
  reader.ReadU64(&reply.sequence);
  reader.ReadU64(&reply.boundary);
  reader.ReadU32(&reply.shard);
  reader.ReadU32(&reply.num_shards);
  reader.ReadBool(&reply.ok);
  if (!reader.ReadString(&reply.error)) {
    return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                "storage reply: truncated header");
  }
  reader.ReadU64(&reply.fragment_count);
  reader.ReadU64(&reply.fragment_hash);
  reader.ReadU64(&reply.checkpoint_gen);
  reader.ReadU64(&reply.oldest_checkpoint_gen);
  reader.ReadU64(&reply.rebuilt_from);
  uint64_t group_count = 0;
  reader.ReadU64(&reply.rss_kb);
  if (!reader.ReadU64(&group_count)) {
    return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                "storage reply: truncated counters");
  }
  if (type < 1 || type > 2) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage reply: unknown type");
  }
  reply.type = static_cast<StorageReply::Type>(type);
  if (group_count > reader.remaining() / kMinGroupBytes + 1) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage reply: absurd group count");
  }
  reply.groups.reserve(group_count);
  for (uint64_t g = 0; g < group_count; ++g) {
    StorageReplyGroup group;
    reader.ReadU32(&group.unit_index);
    if (!reader.ReadU64(&group.fact_index)) {
      return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                  "storage reply: truncated group");
    }
    status = DecodeAtomVector(&reader, &group.cond);
    if (!status.ok()) return status;
    uint64_t side_count = 0;
    if (!reader.ReadU64(&side_count)) {
      return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                  "storage reply: truncated candidates");
    }
    if (side_count > reader.remaining() / kMinIndexBytes + 1) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "storage reply: absurd candidate count");
    }
    group.side_indexes.reserve(side_count);
    for (uint64_t s = 0; s < side_count; ++s) {
      uint64_t side = 0;
      if (!reader.ReadU64(&side)) {
        return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                    "storage reply: truncated candidate");
      }
      group.side_indexes.push_back(side);
    }
    reply.groups.push_back(std::move(group));
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage reply: trailing or missing bytes");
  }
  *out = std::move(reply);
  return SnapshotStatus::Ok();
}

std::string EncodeStorageFragmentFile(const StorageFragmentFile& file) {
  BinaryWriter writer;
  EncodeInterner(&writer);
  writer.WriteU32(file.shard);
  writer.WriteU32(file.num_shards);
  writer.WriteU64(file.boundary);
  writer.WriteU64(file.delta_start);
  writer.WriteU64(file.delta_end);
  writer.WriteU64(file.indexes.size());
  for (uint64_t index : file.indexes) writer.WriteU64(index);
  EncodeAtomVector(file.atoms, &writer);
  EncodeAtomVector(file.frontier, &writer);
  return WrapSnapshot(kSnapshotKindStorageFragment, writer.buffer());
}

SnapshotStatus DecodeStorageFragmentFile(std::string_view bytes,
                                         StorageFragmentFile* out) {
  std::string_view payload;
  SnapshotStatus status =
      UnwrapSnapshot(bytes, kSnapshotKindStorageFragment, &payload);
  if (!status.ok()) return status;
  BinaryReader reader(payload);
  status = DecodeInterner(&reader);
  if (!status.ok()) return status;
  StorageFragmentFile file;
  reader.ReadU32(&file.shard);
  reader.ReadU32(&file.num_shards);
  reader.ReadU64(&file.boundary);
  reader.ReadU64(&file.delta_start);
  uint64_t index_count = 0;
  reader.ReadU64(&file.delta_end);
  if (!reader.ReadU64(&index_count)) {
    return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                "storage fragment: truncated header");
  }
  if (index_count > reader.remaining() / kMinIndexBytes + 1) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage fragment: absurd index count");
  }
  file.indexes.reserve(index_count);
  for (uint64_t i = 0; i < index_count; ++i) {
    uint64_t index = 0;
    if (!reader.ReadU64(&index)) {
      return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                  "storage fragment: truncated indexes");
    }
    file.indexes.push_back(index);
  }
  status = DecodeAtomVector(&reader, &file.atoms);
  if (!status.ok()) return status;
  status = DecodeAtomVector(&reader, &file.frontier);
  if (!status.ok()) return status;
  if (!reader.ok() || !reader.AtEnd()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage fragment: trailing or missing bytes");
  }
  if (file.indexes.size() != file.atoms.size()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage fragment: index/atom mismatch");
  }
  *out = std::move(file);
  return SnapshotStatus::Ok();
}

std::string EncodeStorageLogFile(const StorageLogFile& file) {
  BinaryWriter writer;
  EncodeInterner(&writer);
  writer.WriteU32(file.num_shards);
  writer.WriteU64(file.boundary);
  writer.WriteU64(file.delta_start);
  writer.WriteU64(file.delta_end);
  EncodeAtomVector(file.delta, &writer);
  return WrapSnapshot(kSnapshotKindStorageLog, writer.buffer());
}

SnapshotStatus DecodeStorageLogFile(std::string_view bytes,
                                    StorageLogFile* out) {
  std::string_view payload;
  SnapshotStatus status =
      UnwrapSnapshot(bytes, kSnapshotKindStorageLog, &payload);
  if (!status.ok()) return status;
  BinaryReader reader(payload);
  status = DecodeInterner(&reader);
  if (!status.ok()) return status;
  StorageLogFile file;
  reader.ReadU32(&file.num_shards);
  reader.ReadU64(&file.boundary);
  reader.ReadU64(&file.delta_start);
  if (!reader.ReadU64(&file.delta_end)) {
    return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                "storage log: truncated header");
  }
  status = DecodeAtomVector(&reader, &file.delta);
  if (!status.ok()) return status;
  if (!reader.ok() || !reader.AtEnd()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage log: trailing or missing bytes");
  }
  if (file.delta.size() != file.delta_end - file.delta_start) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "storage log: delta size mismatch");
  }
  *out = std::move(file);
  return SnapshotStatus::Ok();
}

// ---------------------------------------------------------------------------
// State-dir layout helpers.
// ---------------------------------------------------------------------------

std::string ShardDirPath(const std::string& state_dir, uint32_t shard) {
  return state_dir + "/shard-" + std::to_string(shard);
}

std::string LogDirPath(const std::string& state_dir) {
  return state_dir + "/logs";
}

std::string FragmentPath(const std::string& shard_dir, uint64_t generation) {
  return shard_dir + "/fragment-" + std::to_string(generation) + ".frag";
}

std::string LogPath(const std::string& state_dir, uint64_t boundary) {
  return LogDirPath(state_dir) + "/log-" + std::to_string(boundary) + ".log";
}

/// Numeric suffixes of `<prefix><n><suffix>` entries in `dir`, ascending.
std::vector<uint64_t> ListNumbered(const std::string& dir,
                                   const std::string& prefix,
                                   const std::string& suffix) {
  std::vector<uint64_t> out;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return out;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  ::closedir(handle);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> ListFragmentGens(const std::string& shard_dir) {
  return ListNumbered(shard_dir, "fragment-", ".frag");
}

std::vector<uint64_t> ListLogBoundaries(const std::string& state_dir) {
  return ListNumbered(LogDirPath(state_dir), "log-", ".log");
}

// ---------------------------------------------------------------------------
// Per-(unit, fact) discovery classification — the shared geometry both the
// workers and the coordinator compute from an anchored unit and the fact
// its anchor binds onto. The partition of work follows the number of side
// atoms left unresolved by the anchor binding:
//
//   free_sides == 0  ("case A"): the trigger is fully determined by the
//     anchor; the anchor fact's owner emits it (after checking the ground
//     sides it owns), the coordinator confirms the rest.
//   free_sides == 1  ("case B"): each candidate is one matching side
//     fact; every shard scans its own fragment for matches and ships the
//     global indexes it owns. Candidate order across shards is ascending
//     global side-fact index — exactly the sequential engine's
//     enumeration order for a one-free-atom residual body.
//   free_sides >= 2  ("case C"): the residual join spans fragments, so
//     the coordinator runs it inline on the global instance (as it does
//     all anchor-free full passes). Guarded TGDs make this the cold path:
//     the guard atom anchors every body variable, so its residual sides
//     are ground and classify as A.
// ---------------------------------------------------------------------------

struct UnitFactShape {
  bool matches = false;
  size_t free_sides = 0;
  Substitution anchor_sub;
  /// Side atoms fully ground under anchor_sub (must all be present).
  std::vector<Atom> ground_sides;
  /// The single unresolved side atom pattern (valid iff free_sides == 1).
  Atom free_pattern;
};

bool ClassifyUnitFact(const Tgd& tgd, int anchor, PredicateId fact_predicate,
                      std::span<const Term> fact_args, UnitFactShape* shape) {
  *shape = UnitFactShape{};
  const std::vector<Atom>& body = tgd.body();
  if (anchor < 0 || static_cast<size_t>(anchor) >= body.size()) return false;
  if (!BindDiscoveryAnchor(body[anchor], fact_predicate, fact_args,
                           &shape->anchor_sub)) {
    return false;
  }
  for (size_t j = 0; j < body.size(); ++j) {
    if (j == static_cast<size_t>(anchor)) continue;
    const Atom image = shape->anchor_sub.Apply(body[j]);
    if (image.IsGround()) {
      shape->ground_sides.push_back(image);
    } else {
      if (++shape->free_sides == 1) shape->free_pattern = image;
    }
  }
  shape->matches = true;
  return true;
}

/// Enumerates the facts of `instance` matching `pattern` (a partially
/// ground atom), in ascending global-index order, appending each match's
/// global index to `out`. `to_global` maps local fragment indexes to
/// global ones (null: the instance is globally indexed). `owner_filter`
/// restricts matches to facts owned by that shard (-1: no filter) — the
/// coordinator's inline-fallback path scans the global instance but must
/// emit only the lost shard's candidates.
void EnumeratePatternMatches(const Instance& instance,
                             const std::vector<uint64_t>* to_global,
                             const Atom& pattern, uint32_t num_shards,
                             int64_t owner_filter,
                             std::vector<uint64_t>* out) {
  // Seed the scan from the most selective index available: any ground
  // argument position keys a (predicate, position, term) posting list;
  // otherwise fall back to the predicate postings.
  int ground_pos = -1;
  for (size_t i = 0; i < pattern.args().size(); ++i) {
    if (pattern.args()[i].IsGround()) {
      ground_pos = static_cast<int>(i);
      break;
    }
  }
  const std::vector<uint32_t>& postings =
      ground_pos >= 0
          ? instance.FactsWith(pattern.predicate(), ground_pos,
                               pattern.args()[ground_pos])
          : instance.FactsWithPredicate(pattern.predicate());
  for (uint32_t local : postings) {
    if (owner_filter >= 0 &&
        ShardOfFact(instance, local, num_shards) !=
            static_cast<uint32_t>(owner_filter)) {
      continue;
    }
    Substitution probe;
    if (!BindDiscoveryAnchor(pattern, instance.predicate_of(local),
                             instance.args_of(local), &probe)) {
      continue;
    }
    out->push_back(to_global != nullptr ? (*to_global)[local] : local);
  }
  // Postings are ascending and to_global is monotone (owned facts append
  // in global order), so this is already sorted; keep the invariant
  // explicit — merge correctness depends on it, not on index internals.
  std::sort(out->begin(), out->end());
}

/// Rebinds candidate side fact `side_index` of the global instance onto
/// `shape` and appends the full substitution. The coordinator calls this
/// for every candidate a worker ships (and for inline slices), so the
/// merged substitutions are always built from the coordinator's own
/// instance — a shard can nominate candidates, never fabricate bindings.
bool AppendCandidateSub(const Instance& instance, const UnitFactShape& shape,
                        uint64_t side_index,
                        std::vector<Substitution>* out) {
  if (side_index >= instance.size()) return false;
  Substitution sub = shape.anchor_sub;
  if (!BindDiscoveryAnchor(shape.free_pattern,
                           instance.predicate_of(side_index),
                           instance.args_of(side_index), &sub)) {
    return false;
  }
  out->push_back(std::move(sub));
  return true;
}

bool AllGroundSidesPresent(const Instance& instance,
                           const std::vector<Atom>& ground_sides) {
  for (const Atom& side : ground_sides) {
    if (instance.Find(side) < 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

/// A storage worker's in-memory fragment: the owned facts as a real
/// Instance (so discovery gets the same inverted indexes the engine has)
/// plus the local→global index map and the replicated round frontier.
struct WorkerState {
  Instance fragment;
  std::vector<uint64_t> to_global;
  std::vector<Atom> frontier;
  uint64_t boundary = 0;
  uint64_t delta_start = 0;
  uint64_t delta_end = 0;
  uint64_t rebuilt_from = kNoGen;
  bool loaded = false;

  bool Append(const Atom& atom, uint64_t global_index) {
    if (!fragment.Insert(atom)) return false;
    to_global.push_back(global_index);
    return true;
  }

  uint64_t ManifestHash() const {
    uint64_t h = 0;
    for (uint32_t i = 0; i < fragment.size(); ++i) {
      h = FoldManifest(h, fragment.store().hash(i), to_global[i]);
    }
    return h;
  }
};

uint64_t SelfRssKb() {
  struct rusage usage;
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss);  // kilobytes on Linux
}

/// Writes the fragment checkpoint for the state's boundary and prunes old
/// generations down to `keep_generations`. Returns the written generation
/// or kNoGen on failure — a failed checkpoint write degrades *future*
/// recovery but never the current round, so the ack simply reports what
/// is actually durable and the coordinator's log retention adapts.
uint64_t WriteFragmentCheckpoint(const WorkerState& state, uint32_t shard,
                                 uint32_t num_shards,
                                 const std::string& shard_dir,
                                 int keep_generations) {
  StorageFragmentFile file;
  file.shard = shard;
  file.num_shards = num_shards;
  file.boundary = state.boundary;
  file.delta_start = state.delta_start;
  file.delta_end = state.delta_end;
  file.indexes = state.to_global;
  file.atoms = state.fragment.atoms();
  file.frontier = state.frontier;
  const SnapshotStatus status = WriteFileAtomic(
      FragmentPath(shard_dir, state.boundary), EncodeStorageFragmentFile(file));
  if (!status.ok()) return kNoGen;
  std::vector<uint64_t> gens = ListFragmentGens(shard_dir);
  if (gens.size() > static_cast<size_t>(keep_generations)) {
    for (size_t i = 0; i + keep_generations < gens.size(); ++i) {
      ::remove(FragmentPath(shard_dir, gens[i]).c_str());
    }
  }
  return state.boundary;
}

/// Attempts to reconstruct the fragment at `command`'s boundary from one
/// disk checkpoint (`base`, or scratch when null) plus forward replay of
/// the shipped exchange logs. Returns false on any gap or mismatch; the
/// caller walks the recovery ladder newest-checkpoint-first.
bool TryReplay(const StorageCommand& command, uint32_t shard,
               const StorageFragmentFile* base,
               const std::map<uint64_t, const StorageLogFile*>& logs,
               WorkerState* out) {
  WorkerState state;
  uint64_t next_boundary = 0;
  if (base != nullptr) {
    for (size_t i = 0; i < base->atoms.size(); ++i) {
      if (!state.Append(base->atoms[i], base->indexes[i])) return false;
    }
    state.frontier = base->frontier;
    state.delta_start = base->delta_start;
    state.delta_end = base->delta_end;
    next_boundary = base->boundary + 1;
    state.rebuilt_from = base->boundary;
  } else {
    state.rebuilt_from = kScratchGen;
  }
  for (uint64_t b = next_boundary; b <= command.boundary; ++b) {
    auto it = logs.find(b);
    if (it == logs.end()) return false;
    const StorageLogFile& log = *it->second;
    // Coverage must be gapless: each log's delta starts exactly where the
    // fragment's coverage ends.
    if (log.delta_start != state.delta_end && !(b == 0 && state.fragment.empty()
                                                && log.delta_start == 0)) {
      return false;
    }
    for (size_t i = 0; i < log.delta.size(); ++i) {
      const uint64_t global = log.delta_start + i;
      if (OwnerOfAtom(log.delta[i], command.num_shards) != shard) continue;
      if (!state.Append(log.delta[i], global)) return false;
    }
    state.frontier = log.delta;
    state.delta_start = log.delta_start;
    state.delta_end = log.delta_end;
  }
  if (state.delta_start != command.delta_start ||
      state.delta_end != command.delta_end) {
    return false;
  }
  state.boundary = command.boundary;
  state.loaded = true;
  state.rebuilt_from =
      base != nullptr ? state.rebuilt_from : kScratchGen;
  *out = std::move(state);
  return true;
}

/// Computes this shard's candidate groups for a discovery command:
/// anchored units only, cases A and B only (the coordinator owns full
/// passes and multi-free-side joins). Groups come out in strictly
/// increasing (unit, fact) order because the loops run in that order.
void ComputeWorkerGroups(const StorageCommand& command, const TgdSet& tgds,
                         uint32_t shard, const WorkerState& state,
                         std::vector<StorageReplyGroup>* groups) {
  for (size_t u = 0; u < command.units.size(); ++u) {
    const ChaseDiscoveryUnit& unit = command.units[u];
    if (unit.anchor < 0) continue;  // full passes are coordinator-side
    if (unit.tgd_index >= tgds.size()) continue;
    const Tgd& tgd = tgds[unit.tgd_index];
    for (uint64_t f = unit.delta_begin; f < unit.delta_end; ++f) {
      if (f < command.delta_start || f >= command.delta_end) continue;
      const Atom& anchor_fact =
          state.frontier[static_cast<size_t>(f - command.delta_start)];
      UnitFactShape shape;
      if (!ClassifyUnitFact(tgd, unit.anchor, anchor_fact.predicate(),
                            anchor_fact.args(), &shape)) {
        continue;
      }
      if (shape.free_sides >= 2) continue;  // case C: coordinator-side
      // Check the ground sides this shard owns against its fragment — an
      // owned ground side that is absent from the fragment is absent from
      // the instance, so the whole group is vetoed here. Non-owned sides
      // go up as cond atoms for the coordinator's definitive check.
      bool owned_side_missing = false;
      std::vector<Atom> cond;
      for (const Atom& side : shape.ground_sides) {
        if (OwnerOfAtom(side, command.num_shards) == shard) {
          if (state.fragment.Find(side) < 0) {
            owned_side_missing = true;
            break;
          }
        } else {
          cond.push_back(side);
        }
      }
      if (owned_side_missing) continue;
      StorageReplyGroup group;
      group.unit_index = static_cast<uint32_t>(u);
      group.fact_index = f;
      group.cond = std::move(cond);
      if (shape.free_sides == 0) {
        // Case A: the anchor fact's owner speaks for the trigger.
        if (OwnerOfAtom(anchor_fact, command.num_shards) != shard) continue;
        group.side_indexes.push_back(0);
      } else {
        // Case B: every shard ships the matching side facts it owns.
        EnumeratePatternMatches(state.fragment, &state.to_global,
                                shape.free_pattern, command.num_shards,
                                /*owner_filter=*/-1, &group.side_indexes);
        if (group.side_indexes.empty()) continue;
      }
      groups->push_back(std::move(group));
    }
  }
}

/// Long-lived storage-worker entry point: parks in a blocking read on the
/// command pipe, answers each command with one framed reply, exits 0 on
/// command-pipe EOF (graceful teardown). Runs in a forked child; the
/// return value becomes the exit code.
int StorageWorkerBody(const TgdSet* tgds, uint32_t shard, uint32_t num_shards,
                      double heartbeat_interval_ms, int keep_generations,
                      const std::string& shard_dir, int command_fd,
                      int result_fd, int heartbeat_fd) {
  HeartbeatWriter heartbeat(heartbeat_fd, heartbeat_interval_ms);
  WorkerState state;
  std::string frame;
  while (ReadLengthPrefixedFrameBlocking(command_fd, &frame, kMaxFrameBytes)) {
    StorageCommand command;
    if (!DecodeStorageCommand(frame, &command).ok()) {
      return kStorageExitProtocol;
    }
    // Injected faults fire on command receipt, before any work — the
    // deterministic moment chaos tests pin (see ShardWorkerBody for why
    // the fault is raised child-side).
    if (command.inject_fault ==
        static_cast<int32_t>(StorageFault::Kind::kKill)) {
      ::raise(SIGKILL);
    } else if (command.inject_fault ==
               static_cast<int32_t>(StorageFault::Kind::kStall)) {
      ::raise(SIGSTOP);
    } else if (command.inject_fault ==
               static_cast<int32_t>(StorageFault::Kind::kOom)) {
      WorkerLimits limits;
      limits.address_space_bytes = kOomFaultLimitBytes;
      InstallWorkerLimits(limits);
      try {
        void* probe = ::operator new(kOomFaultProbeBytes);
        *static_cast<volatile char*>(probe) = 1;
        ::operator delete(probe);
      } catch (const std::bad_alloc&) {
        return kStorageExitOom;
      }
    }

    StorageReply reply;
    reply.sequence = command.sequence;
    reply.boundary = command.boundary;
    reply.shard = shard;
    reply.num_shards = num_shards;

    switch (command.type) {
      case StorageCommand::Type::kSeed: {
        state = WorkerState{};
        for (size_t i = 0; i < command.seed_atoms.size(); ++i) {
          state.Append(command.seed_atoms[i], command.seed_indexes[i]);
        }
        state.frontier = std::move(command.frontier);
        state.boundary = command.boundary;
        state.delta_start = command.delta_start;
        state.delta_end = command.delta_end;
        state.loaded = true;
        break;
      }
      case StorageCommand::Type::kDelta: {
        if (!state.loaded || state.delta_end != command.delta_start ||
            state.boundary + 1 != command.boundary) {
          reply.ok = false;
          reply.error = "delta-gap";
          break;
        }
        for (size_t i = 0; i < command.frontier.size(); ++i) {
          const Atom& atom = command.frontier[i];
          if (OwnerOfAtom(atom, num_shards) != shard) continue;
          state.Append(atom, command.delta_start + i);
        }
        state.frontier = std::move(command.frontier);
        state.boundary = command.boundary;
        state.delta_start = command.delta_start;
        state.delta_end = command.delta_end;
        state.rebuilt_from = kNoGen;
        break;
      }
      case StorageCommand::Type::kRebuild: {
        // Decode whichever shipped logs are usable; a log that fails its
        // envelope or interner check is simply absent from the replay
        // map, and the ladder decides whether recovery is still possible.
        std::vector<StorageLogFile> decoded;
        decoded.reserve(command.logs.size());
        std::map<uint64_t, const StorageLogFile*> logs;
        for (const std::string& bytes : command.logs) {
          StorageLogFile log;
          if (!DecodeStorageLogFile(bytes, &log).ok()) continue;
          if (log.num_shards != num_shards) continue;
          decoded.push_back(std::move(log));
        }
        for (const StorageLogFile& log : decoded) {
          logs[log.boundary] = &log;
        }
        // The recovery ladder: newest usable checkpoint first, older
        // generations next (longer replay), scratch replay from log 0
        // last. Every rung re-derives the same fragment bytes — the
        // ladder trades replay length for damage tolerance, not content.
        bool rebuilt = false;
        std::vector<uint64_t> gens = ListFragmentGens(shard_dir);
        for (size_t i = gens.size(); i-- > 0 && !rebuilt;) {
          if (gens[i] > command.boundary) continue;
          std::string bytes;
          if (!ReadFileBytes(FragmentPath(shard_dir, gens[i]), &bytes).ok()) {
            continue;
          }
          StorageFragmentFile base;
          if (!DecodeStorageFragmentFile(bytes, &base).ok()) continue;
          if (base.shard != shard || base.num_shards != num_shards) continue;
          if (base.boundary != gens[i]) continue;
          rebuilt = TryReplay(command, shard, &base, logs, &state);
        }
        if (!rebuilt) {
          rebuilt = TryReplay(command, shard, nullptr, logs, &state);
        }
        if (!rebuilt) {
          reply.ok = false;
          reply.error = "rebuild-exhausted";
        }
        break;
      }
      case StorageCommand::Type::kDiscover: {
        if (!state.loaded || state.boundary != command.boundary ||
            state.delta_start != command.delta_start ||
            state.delta_end != command.delta_end) {
          reply.ok = false;
          reply.error = "discover-before-load";
        } else {
          reply.type = StorageReply::Type::kCandidates;
          ComputeWorkerGroups(command, *tgds, shard, state, &reply.groups);
        }
        break;
      }
    }

    if (command.type != StorageCommand::Type::kDiscover && reply.ok) {
      // Every successful load ends with a fresh fragment checkpoint at
      // the boundary, then an ack describing what is actually durable
      // (the write may have failed; the ack never lies about it).
      WriteFragmentCheckpoint(state, shard, num_shards, shard_dir,
                              keep_generations);
      std::vector<uint64_t> gens = ListFragmentGens(shard_dir);
      reply.checkpoint_gen = gens.empty() ? kNoGen : gens.back();
      reply.oldest_checkpoint_gen = gens.empty() ? kNoGen : gens.front();
      reply.fragment_count = state.fragment.size();
      reply.fragment_hash = state.ManifestHash();
      reply.rebuilt_from = state.rebuilt_from;
      reply.rss_kb = SelfRssKb();
    }

    std::string out;
    AppendLengthPrefixedFrame(&out, EncodeStorageReply(reply));
    int write_errno = 0;
    if (!WriteAllToFd(result_fd, out, &write_errno)) {
      return IsPeerGoneErrno(write_errno) ? kStorageExitPeerGone
                                          : kStorageExitWriteError;
    }
  }
  return kStorageExitOk;
}

std::string StorageDeathCause(const WorkerExit& exit) {
  if (exit.signaled) {
    switch (exit.term_signal) {
      case SIGKILL:
        return "sigkill";
      case SIGXCPU:
        return "cpu-limit";
      case SIGSEGV:
        return "sigsegv";
      default:
        return "signal-" + std::to_string(exit.term_signal);
    }
  }
  if (exit.exited) {
    if (exit.exit_code == kStorageExitOom) return "oom";
    if (exit.exit_code == kStorageExitWriteError) return "write-failed";
    if (exit.exit_code == kStorageExitPeerGone) return "coordinator-gone";
    if (exit.exit_code == kStorageExitProtocol) return "protocol-error";
    return "exit-" + std::to_string(exit.exit_code);
  }
  return "reaped-unknown";
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

/// The storage-shard coordinator: owns the long-lived worker fleet, the
/// acknowledged ownership manifests, the retained exchange log, and the
/// respawn/rebuild/reseed recovery ladder. One instance lives for the
/// whole run (it is the ChaseOptions::discovery_hook), so workers and
/// recovery bookkeeping span rounds.
class StorageCoordinator : public ChaseDiscoveryHook {
 public:
  StorageCoordinator(const StorageShardOptions& options,
                     StorageShardStats* stats)
      : options_(options),
        stats_(stats),
        fault_used_(options.faults.size(), false) {
    if (options_.shards < 1) options_.shards = 1;
    // Recovery needs a fallback generation when the newest checkpoint is
    // the casualty; a single retained generation would make every
    // checkpoint corruption unrecoverable.
    if (options_.keep_generations < 2) options_.keep_generations = 2;
  }

  ~StorageCoordinator() override {
    TeardownWorkers();
    if (ephemeral_ && !state_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(state_dir_, ec);
    }
  }

  bool DiscoverRound(const ChaseDiscoveryRound& round,
                     std::vector<std::vector<Substitution>>* found) override;

 private:
  /// Per-round slot protocol: load (seed/delta/rebuild) then discover,
  /// each a strict request-reply exchange.
  enum class Phase : int {
    kNeedLoad,
    kLoadWait,
    kNeedDiscover,
    kDiscoverWait,
    kDone,
  };

  struct Slot {
    uint32_t shard = 0;
    WorkerProcess worker;
    bool running = false;
    /// Permanently absorbed into the coordinator for this layout epoch.
    bool inlined = false;
    /// True once any ack was accepted from this slot under the current
    /// layout. Past that point a full reseed is forbidden: state must be
    /// recoverable from disk, or the shard is honestly lost.
    bool ever_acked = false;
    bool force_seed = false;
    bool reseeded = false;
    /// Boundary the live worker's fragment is synced to (kNoGen: none).
    uint64_t synced_boundary = kNoGen;
    /// Oldest fragment generation the last ack reported durable — the
    /// shard's contribution to the exchange-log retention floor.
    uint64_t oldest_gen = kNoGen;
    int attempts = 0;  // workers spawned for this slot this round
    double ready_at = 0.0;
    double last_beat = 0.0;
    double started_at = 0.0;
    double first_fault_at = -1.0;
    Phase phase = Phase::kNeedLoad;
    uint64_t await_sequence = 0;
    std::string rx;
    StorageReply reply;
  };

  uint32_t ShardsForRound(uint64_t round) const {
    int n = options_.shards;
    if (options_.reshard_at_round >= 0 && options_.reshard_to > 0 &&
        round >= static_cast<uint64_t>(options_.reshard_at_round)) {
      n = options_.reshard_to;
    }
    return n < 1 ? 1 : static_cast<uint32_t>(n);
  }

  bool TakeFault(uint64_t boundary, uint32_t shard, int attempt,
                 StorageFault::Kind kind, StorageFault::Phase phase) {
    for (size_t i = 0; i < options_.faults.size(); ++i) {
      const StorageFault& fault = options_.faults[i];
      if (!fault_used_[i] && fault.boundary == boundary &&
          fault.shard == shard && fault.attempt == attempt &&
          fault.kind == kind && fault.phase == phase) {
        fault_used_[i] = true;
        return true;
      }
    }
    return false;
  }

  void RecordEvent(uint64_t boundary, uint32_t shard, int attempt,
                   std::string cause) {
    if (stats_ == nullptr) return;
    StorageShardEvent event;
    event.boundary = boundary;
    event.shard = shard;
    event.attempt = attempt;
    event.cause = std::move(cause);
    stats_->events.push_back(std::move(event));
  }

  void ScheduleRetry(const ChaseDiscoveryRound& round, Slot* slot, double now,
                     const std::string& cause) {
    RecordEvent(round.round, slot->shard, slot->attempts, cause);
    if (slot->first_fault_at < 0) slot->first_fault_at = now;
    const double delay = BackoffDelayMs(
        slot->attempts, options_.backoff_base_ms, options_.backoff_cap_ms,
        options_.jitter_seed,
        Mix64(round.round) ^ (static_cast<uint64_t>(slot->shard) << 32) ^
            static_cast<uint64_t>(slot->attempts));
    slot->ready_at = now + delay;
    slot->phase = Phase::kNeedLoad;
    ++slot->attempts;
    if (stats_ != nullptr) stats_->backoff_wait_ms += delay;
  }

  /// Kills the slot's worker (if any) and schedules the respawn.
  void FailSlot(const ChaseDiscoveryRound& round, Slot* slot, double now,
                const std::string& cause) {
    if (slot->running) {
      slot->worker.Kill(SIGKILL);
      slot->worker.WaitReaped(2000.0);
      slot->running = false;
      if (stats_ != nullptr) ++stats_->worker_deaths;
    }
    slot->rx.clear();
    slot->synced_boundary = kNoGen;
    ScheduleRetry(round, slot, now, cause);
  }

  bool EnsureStateDir() {
    if (state_dir_.empty()) {
      if (!options_.state_dir.empty()) {
        state_dir_ = options_.state_dir;
      } else {
        char tmpl[] = "/tmp/gqe-storage-XXXXXX";
        char* made = ::mkdtemp(tmpl);
        if (made == nullptr) return false;
        state_dir_ = made;
        ephemeral_ = true;
      }
    }
    std::error_code ec;
    std::filesystem::create_directories(LogDirPath(state_dir_), ec);
    for (uint32_t s = 0; s < layout_; ++s) {
      std::filesystem::create_directories(ShardDirPath(state_dir_, s), ec);
    }
    return true;
  }

  bool DiskHasFragments(uint32_t shard) const {
    return !ListFragmentGens(ShardDirPath(state_dir_, shard)).empty();
  }

  bool SpawnSlot(const ChaseDiscoveryRound& round, Slot* slot) {
    const TgdSet* tgds = round.tgds;
    const uint32_t shard = slot->shard;
    const uint32_t num_shards = layout_;
    const double heartbeat = options_.heartbeat_interval_ms;
    const int keep = options_.keep_generations;
    const std::string shard_dir = ShardDirPath(state_dir_, shard);
    // The closure runs synchronously inside Spawn, in the child branch of
    // the fork, so capturing parent state by reference/pointer is safe:
    // the child computes against its copy-on-write snapshot.
    auto body = [tgds, shard, num_shards, heartbeat, keep, &shard_dir](
                    int command_fd, int result_fd, int heartbeat_fd) -> int {
      return StorageWorkerBody(tgds, shard, num_shards, heartbeat, keep,
                               shard_dir, command_fd, result_fd, heartbeat_fd);
    };
    std::string error;
    WorkerProcess worker;
    if (!WorkerProcess::Spawn(options_.limits, body, &worker, &error)) {
      return false;
    }
    slot->worker = std::move(worker);
    slot->running = true;
    slot->rx.clear();
    slot->synced_boundary = kNoGen;
    slot->reseeded = false;
    slot->force_seed = false;
    if (stats_ != nullptr) {
      ++stats_->workers_spawned;
      if (slot->attempts > 1 || slot->ever_acked) ++stats_->respawns;
    }
    return true;
  }

  /// Writes this round's delta as a retained exchange log — durably
  /// (tmp+fsync+rename), and strictly BEFORE any load command for the
  /// boundary goes out. By the time any shard acks the boundary, the
  /// bytes needed to replay it into a respawned shard are on disk, so a
  /// kill between a shard's ack and the round commit can always be
  /// recovered from checkpoint + log.
  void WriteRoundLog(const ChaseDiscoveryRound& round) {
    StorageLogFile file;
    file.num_shards = layout_;
    file.boundary = round.round;
    file.delta_start = round.delta_start;
    file.delta_end = round.delta_end;
    file.delta = round_delta_;
    const SnapshotStatus status = WriteFileAtomic(
        LogPath(state_dir_, round.round), EncodeStorageLogFile(file));
    if (!status.ok()) {
      RecordEvent(round.round, 0, 0, "write-failed");
      return;
    }
    if (stats_ != nullptr) ++stats_->logs_written;
  }

  /// Deletes retained logs no surviving checkpoint generation could need
  /// for forward replay: log b is prunable once every active shard's
  /// oldest durable fragment generation is >= b. A shard with no known
  /// durable generation blocks pruning entirely.
  void PruneLogs() {
    uint64_t min_oldest = kNoGen;
    bool any_active = false;
    for (const Slot& slot : slots_) {
      if (slot.inlined) continue;
      any_active = true;
      if (slot.oldest_gen == kNoGen) return;
      min_oldest = std::min(min_oldest, slot.oldest_gen);
    }
    if (!any_active || min_oldest == kNoGen) return;
    for (uint64_t b : ListLogBoundaries(state_dir_)) {
      if (b > min_oldest) continue;
      if (::remove(LogPath(state_dir_, b).c_str()) == 0 &&
          stats_ != nullptr) {
        ++stats_->logs_pruned;
      }
    }
  }

  StorageCommand BuildLoadCommand(const ChaseDiscoveryRound& round,
                                  Slot* slot) const {
    StorageCommand command;
    const Instance& instance = *round.instance;
    if (!slot->force_seed && slot->synced_boundary != kNoGen &&
        slot->synced_boundary + 1 == round.round) {
      // The steady state: the live worker is exactly one boundary behind,
      // so one delta brings it current.
      command.type = StorageCommand::Type::kDelta;
      command.frontier = round_delta_;
    } else if (!slot->force_seed &&
               (slot->ever_acked || DiskHasFragments(slot->shard))) {
      // A respawned worker (or a restarted coordinator's fresh worker
      // over surviving state): rebuild from disk checkpoint + logs.
      command.type = StorageCommand::Type::kRebuild;
      for (uint64_t b : ListLogBoundaries(state_dir_)) {
        if (b > round.round) continue;
        std::string bytes;
        if (ReadFileBytes(LogPath(state_dir_, b), &bytes).ok()) {
          command.logs.push_back(std::move(bytes));
        }
      }
    } else {
      // First contact under this layout: full owned-fragment seed.
      command.type = StorageCommand::Type::kSeed;
      for (uint64_t g = 0; g < round.delta_end; ++g) {
        if (ShardOfFact(instance, g, layout_) != slot->shard) continue;
        command.seed_indexes.push_back(g);
        command.seed_atoms.push_back(instance.atom(g));
      }
      command.frontier = round_delta_;
    }
    return command;
  }

  /// Frames and ships one command; on failure the slot is failed and a
  /// retry scheduled. Returns true when the command was handed off.
  bool SendCommand(const ChaseDiscoveryRound& round, Slot* slot,
                   StorageCommand* command, double now) {
    command->sequence = next_sequence_++;
    command->boundary = round.round;
    command->num_shards = layout_;
    command->delta_start = round.delta_start;
    command->delta_end = round.delta_end;
    const StorageFault::Phase fphase = slot->phase == Phase::kNeedLoad
                                           ? StorageFault::Phase::kLoad
                                           : StorageFault::Phase::kDiscover;
    for (StorageFault::Kind kind :
         {StorageFault::Kind::kKill, StorageFault::Kind::kStall,
          StorageFault::Kind::kOom}) {
      if (TakeFault(round.round, slot->shard, slot->attempts, kind, fphase)) {
        command->inject_fault = static_cast<int32_t>(kind);
        break;
      }
    }
    std::string framed;
    AppendLengthPrefixedFrame(&framed, EncodeStorageCommand(*command));
    if (stats_ != nullptr) stats_->exchanged_bytes += framed.size();
    const double timeout = options_.command_timeout_ms > 0
                               ? options_.command_timeout_ms
                               : options_.heartbeat_timeout_ms;
    if (!slot->worker.WriteCommand(framed, timeout)) {
      std::string cause = "command-timeout";
      if (slot->worker.Poll()) {
        cause = StorageDeathCause(slot->worker.exit_status());
        slot->running = false;
        if (stats_ != nullptr) ++stats_->worker_deaths;
        slot->rx.clear();
        slot->synced_boundary = kNoGen;
        ScheduleRetry(round, slot, now, cause);
      } else {
        FailSlot(round, slot, now, cause);
      }
      return false;
    }
    slot->await_sequence = command->sequence;
    slot->phase = slot->phase == Phase::kNeedLoad ? Phase::kLoadWait
                                                  : Phase::kDiscoverWait;
    return true;
  }

  /// Validates a candidates reply against the coordinator's own view:
  /// strictly increasing owned (unit, fact) groups, shapes the worker was
  /// allowed to answer (cases A/B), and every candidate side fact really
  /// matching. A reply failing any of it is a recoverable shard fault.
  bool ValidateGroups(const ChaseDiscoveryRound& round, uint32_t shard,
                      const StorageReply& reply) const {
    const std::vector<ChaseDiscoveryUnit>& units = *round.units;
    const Instance& instance = *round.instance;
    bool have_prev = false;
    std::pair<uint32_t, uint64_t> prev{0, 0};
    for (const StorageReplyGroup& group : reply.groups) {
      if (group.unit_index >= units.size()) return false;
      const std::pair<uint32_t, uint64_t> key{group.unit_index,
                                              group.fact_index};
      if (have_prev && key <= prev) return false;
      prev = key;
      have_prev = true;
      const ChaseDiscoveryUnit& unit = units[group.unit_index];
      if (unit.anchor < 0) return false;
      if (group.fact_index < unit.delta_begin ||
          group.fact_index >= unit.delta_end) {
        return false;
      }
      UnitFactShape shape;
      if (!ClassifyUnitFact(
              (*round.tgds)[unit.tgd_index], unit.anchor,
              instance.predicate_of(static_cast<uint32_t>(group.fact_index)),
              instance.args_of(static_cast<uint32_t>(group.fact_index)),
              &shape)) {
        return false;
      }
      if (shape.free_sides >= 2) return false;
      if (shape.free_sides == 0) {
        if (ShardOfFact(instance, group.fact_index, layout_) != shard) {
          return false;
        }
        if (group.side_indexes.size() != 1 || group.side_indexes[0] != 0) {
          return false;
        }
      } else {
        if (group.side_indexes.empty()) return false;
        uint64_t prev_side = 0;
        bool have_side = false;
        for (uint64_t side : group.side_indexes) {
          if (have_side && side <= prev_side) return false;
          prev_side = side;
          have_side = true;
          if (side >= instance.size()) return false;
          if (ShardOfFact(instance, side, layout_) != shard) return false;
          Substitution probe = shape.anchor_sub;
          if (!BindDiscoveryAnchor(shape.free_pattern,
                                   instance.predicate_of(
                                       static_cast<uint32_t>(side)),
                                   instance.args_of(
                                       static_cast<uint32_t>(side)),
                                   &probe)) {
            return false;
          }
        }
      }
    }
    return true;
  }

  /// Processes one framed reply. Returns false when the slot was failed.
  bool HandleFrame(const ChaseDiscoveryRound& round, Slot* slot,
                   std::string* payload, double now, size_t* remaining) {
    const StorageFault::Phase fphase = slot->phase == Phase::kLoadWait
                                           ? StorageFault::Phase::kLoad
                                           : StorageFault::Phase::kDiscover;
    if (TakeFault(round.round, slot->shard, slot->attempts,
                  StorageFault::Kind::kCorrupt, fphase) &&
        !payload->empty()) {
      // Simulated wire corruption: one flipped bit, caught by the reply's
      // envelope CRC below.
      (*payload)[payload->size() / 2] ^= 0x20;
    }
    if (stats_ != nullptr) stats_->exchanged_bytes += payload->size();
    StorageReply reply;
    if (!DecodeStorageReply(*payload, &reply).ok()) {
      if (stats_ != nullptr) ++stats_->corrupt_replies;
      FailSlot(round, slot, now, "corrupt-reply");
      return false;
    }
    if (reply.sequence < slot->await_sequence) return true;  // stale: drop
    if (reply.sequence != slot->await_sequence ||
        reply.boundary != round.round || reply.shard != slot->shard ||
        reply.num_shards != layout_) {
      if (stats_ != nullptr) ++stats_->corrupt_replies;
      FailSlot(round, slot, now, "bad-reply");
      return false;
    }
    if (slot->phase == Phase::kLoadWait) {
      if (reply.type != StorageReply::Type::kAck) {
        if (stats_ != nullptr) ++stats_->corrupt_replies;
        FailSlot(round, slot, now, "bad-reply");
        return false;
      }
      if (!reply.ok) {
        if (!slot->ever_acked && !slot->reseeded) {
          // A fresh slot whose rebuild found nothing usable may be seeded
          // in full — it never held acknowledged state, so the seed
          // cannot paper over lost durability.
          slot->reseeded = true;
          slot->force_seed = true;
          slot->phase = Phase::kNeedLoad;
          RecordEvent(round.round, slot->shard, slot->attempts, "reseed");
          if (stats_ != nullptr) ++stats_->reseeds;
          return true;
        }
        FailSlot(round, slot, now, "rebuild-failed");
        return false;
      }
      if (reply.fragment_count != expected_count_[slot->shard] ||
          reply.fragment_hash != expected_hash_[slot->shard]) {
        if (stats_ != nullptr) ++stats_->bad_acks;
        FailSlot(round, slot, now, "bad-ack");
        return false;
      }
      slot->ever_acked = true;
      slot->synced_boundary = round.round;
      slot->oldest_gen = reply.oldest_checkpoint_gen;
      slot->force_seed = false;
      if (stats_ != nullptr) {
        if (reply.rebuilt_from != kNoGen) ++stats_->rebuilds;
        stats_->max_fragment_facts =
            std::max(stats_->max_fragment_facts,
                     static_cast<size_t>(reply.fragment_count));
        stats_->max_worker_rss_kb = std::max(
            stats_->max_worker_rss_kb, static_cast<long>(reply.rss_kb));
      }
      slot->phase = Phase::kNeedDiscover;
      return true;
    }
    // kDiscoverWait.
    if (reply.type != StorageReply::Type::kCandidates || !reply.ok ||
        !ValidateGroups(round, slot->shard, reply)) {
      if (stats_ != nullptr) ++stats_->corrupt_replies;
      FailSlot(round, slot, now, "bad-reply");
      return false;
    }
    if (stats_ != nullptr) {
      for (const StorageReplyGroup& group : reply.groups) {
        stats_->exchanged_candidates += group.side_indexes.size();
      }
    }
    slot->reply = std::move(reply);
    slot->phase = Phase::kDone;
    if (slot->first_fault_at >= 0 && stats_ != nullptr) {
      stats_->recovery_ms += now - slot->first_fault_at;
    }
    --*remaining;
    return true;
  }

  /// Reassembles the round's candidates into the engine's canonical
  /// per-unit order: for every (unit, fact) in sequential order, merge
  /// the shards' nominations (rebinding each against the coordinator's
  /// instance), compute inline what workers cannot answer (full passes,
  /// multi-free-side joins, inlined slots), and veto any group whose
  /// ground sides are not all present.
  void Reassemble(const ChaseDiscoveryRound& round,
                  std::vector<std::vector<Substitution>>* found) {
    const std::vector<ChaseDiscoveryUnit>& units = *round.units;
    const Instance& instance = *round.instance;
    ExecutionBudget unlimited;
    unlimited.max_facts = 0;
    Governor governor(unlimited);
    std::vector<size_t> cursor(slots_.size(), 0);
    bool any_inlined = false;
    for (const Slot& slot : slots_) any_inlined |= slot.inlined;
    for (size_t u = 0; u < units.size(); ++u) {
      const ChaseDiscoveryUnit& unit = units[u];
      std::vector<Substitution>& out = (*found)[u];
      if (unit.anchor < 0) {
        // Full passes run coordinator-side under a fresh ungoverned
        // governor (budgets are engine-side rails, and a replayed round
        // must redo the same search).
        RunChaseDiscoveryUnit(unit, *round.tgds, instance, /*hom_threads=*/1,
                              &governor, &out);
        continue;
      }
      const Tgd& tgd = (*round.tgds)[unit.tgd_index];
      for (uint64_t f = unit.delta_begin; f < unit.delta_end; ++f) {
        // Collect this (unit, fact)'s groups from every shard's cursor.
        size_t here_count = 0;
        for (size_t s = 0; s < slots_.size(); ++s) {
          const std::vector<StorageReplyGroup>& groups =
              slots_[s].reply.groups;
          size_t& c = cursor[s];
          while (c < groups.size() &&
                 (groups[c].unit_index < u ||
                  (groups[c].unit_index == u && groups[c].fact_index < f))) {
            ++c;
          }
          if (c < groups.size() && groups[c].unit_index == u &&
              groups[c].fact_index == f) {
            side_scratch_.insert(side_scratch_.end(),
                                 groups[c].side_indexes.begin(),
                                 groups[c].side_indexes.end());
            ++here_count;
            ++c;
          }
        }
        const bool need_shape = here_count > 0 || any_inlined || true;
        UnitFactShape shape;
        const bool matches =
            need_shape &&
            ClassifyUnitFact(tgd, unit.anchor,
                             instance.predicate_of(static_cast<uint32_t>(f)),
                             instance.args_of(static_cast<uint32_t>(f)),
                             &shape);
        if (!matches || shape.free_sides >= 2) {
          side_scratch_.clear();
          if (matches) {
            // Case C: the residual join spans fragments; run it inline.
            RunChaseDiscoveryAtFact(unit.tgd_index, unit.anchor, f,
                                    *round.tgds, instance, &governor, &out);
          }
          continue;
        }
        if (!AllGroundSidesPresent(instance, shape.ground_sides)) {
          side_scratch_.clear();
          continue;
        }
        if (shape.free_sides == 0) {
          // Case A: the anchor's owner speaks for the trigger.
          side_scratch_.clear();
          const uint32_t owner = ShardOfFact(instance, f, layout_);
          if (slots_[owner].inlined) {
            out.push_back(shape.anchor_sub);
            if (stats_ != nullptr) ++stats_->exchanged_candidates;
          } else if (here_count > 0) {
            out.push_back(shape.anchor_sub);
          }
          continue;
        }
        // Case B: merge every shard's nominations with inline slices,
        // ascending global side-fact index — the sequential enumeration
        // order for a one-free-atom residual body.
        for (const Slot& slot : slots_) {
          if (!slot.inlined) continue;
          const size_t before = side_scratch_.size();
          EnumeratePatternMatches(instance, nullptr, shape.free_pattern,
                                  layout_, slot.shard, &side_scratch_);
          if (stats_ != nullptr) {
            stats_->exchanged_candidates += side_scratch_.size() - before;
          }
        }
        std::sort(side_scratch_.begin(), side_scratch_.end());
        for (uint64_t side : side_scratch_) {
          AppendCandidateSub(instance, shape, side, &out);
        }
        side_scratch_.clear();
      }
    }
  }

  void TeardownWorkers() {
    // Graceful half first: closing the command pipe EOFs the worker's
    // blocking read and it exits 0.
    for (Slot& slot : slots_) {
      if (slot.running) slot.worker.CloseCommand();
    }
    const auto start = std::chrono::steady_clock::now();
    while (MsSince(start) < 200.0) {
      bool alive = false;
      for (Slot& slot : slots_) {
        if (!slot.running) continue;
        if (slot.worker.Poll()) {
          slot.running = false;
        } else {
          alive = true;
        }
      }
      if (!alive) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (Slot& slot : slots_) {
      if (slot.running) {
        slot.worker.Kill(SIGKILL);
        slot.worker.WaitReaped(2000.0);
        slot.running = false;
      }
      slot.synced_boundary = kNoGen;
    }
  }

  StorageShardOptions options_;
  StorageShardStats* stats_;
  std::vector<bool> fault_used_;
  std::string state_dir_;
  bool ephemeral_ = false;
  /// Current shard layout (0: none yet). Changing it retires the fleet.
  uint32_t layout_ = 0;
  std::vector<Slot> slots_;
  uint64_t next_sequence_ = 1;
  /// Acknowledged-ownership manifests: expected owned-fact count and
  /// rolling content hash per shard, folded incrementally over the
  /// committed instance prefix [0, covered_).
  std::vector<uint64_t> expected_hash_;
  std::vector<uint64_t> expected_count_;
  uint64_t covered_ = 0;
  std::vector<Atom> round_delta_;
  std::vector<uint64_t> side_scratch_;
};

bool StorageCoordinator::DiscoverRound(
    const ChaseDiscoveryRound& round,
    std::vector<std::vector<Substitution>>* found) {
  if (round.governor->Check() != Status::kCompleted) {
    TeardownWorkers();
    return false;
  }
  const uint32_t num_shards = ShardsForRound(round.round);
  if (stats_ != nullptr) {
    ++stats_->rounds;
    stats_->max_shards_used =
        std::max(stats_->max_shards_used, static_cast<int>(num_shards));
  }
  if (layout_ != num_shards) {
    // Layout epoch change (first round, or mid-run resharding): retire
    // the fleet and restart manifests from scratch. Resharding moves
    // data — the fresh fleet is seeded with the new layout's fragments —
    // but needs no old-layout cooperation, so it also serves as the
    // recovery path when a restarted coordinator picks a new shard count.
    const bool reshard = layout_ != 0;
    TeardownWorkers();
    slots_.clear();
    slots_.resize(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) slots_[s].shard = s;
    expected_hash_.assign(num_shards, 0);
    expected_count_.assign(num_shards, 0);
    covered_ = 0;
    layout_ = num_shards;
    if (reshard) RecordEvent(round.round, 0, 0, "reshard");
  }
  if (!EnsureStateDir()) {
    RecordEvent(round.round, 0, 0, "write-failed");
    return false;
  }
  const Instance& instance = *round.instance;
  round_delta_.assign(instance.atoms().begin() + round.delta_start,
                      instance.atoms().begin() + round.delta_end);
  if (stats_ != nullptr) stats_->shipped_facts += round_delta_.size();
  // Durable exchange log first — before any load command, hence before
  // any ack this boundary (satellite: retention-before-ack).
  WriteRoundLog(round);
  for (uint64_t g = covered_; g < round.delta_end; ++g) {
    const uint32_t owner =
        ShardOfFact(instance, g, layout_);
    expected_hash_[owner] = FoldManifest(
        expected_hash_[owner], instance.store().hash(static_cast<uint32_t>(g)),
        g);
    ++expected_count_[owner];
  }
  covered_ = round.delta_end;

  size_t remaining = 0;
  for (Slot& slot : slots_) {
    // 1-based tries at this boundary: a surviving worker's first try is
    // attempt 1 (same ladder position as a fresh spawn's).
    slot.attempts = 1;
    slot.ready_at = 0.0;
    slot.last_beat = 0.0;
    slot.started_at = 0.0;
    slot.first_fault_at = -1.0;
    slot.force_seed = false;
    slot.reseeded = false;
    slot.reply = StorageReply{};
    slot.phase = slot.inlined ? Phase::kDone : Phase::kNeedLoad;
    if (!slot.inlined) ++remaining;
  }
  const auto round_start = std::chrono::steady_clock::now();

  while (remaining > 0) {
    if (round.governor->Check() != Status::kCompleted) {
      TeardownWorkers();
      return false;
    }
    const double now = MsSince(round_start);
    bool progressed = false;
    for (Slot& slot : slots_) {
      if (slot.phase == Phase::kDone) continue;
      if (!slot.running) {
        if (now < slot.ready_at) continue;
        if (slot.attempts > options_.max_attempts) {
          if (!options_.inline_fallback) {
            // No degradation path allowed: the engine discards the round
            // and stops with Status::kShardLost at the last committed
            // boundary, from which ResumeStorageShardChase can continue.
            RecordEvent(round.round, slot.shard, slot.attempts, "shard-lost");
            TeardownWorkers();
            return false;
          }
          slot.inlined = true;
          slot.phase = Phase::kDone;
          --remaining;
          if (stats_ != nullptr) ++stats_->inline_fallbacks;
          RecordEvent(round.round, slot.shard, slot.attempts,
                      "inline-fallback");
          if (slot.first_fault_at >= 0 && stats_ != nullptr) {
            stats_->recovery_ms += now - slot.first_fault_at;
          }
          progressed = true;
          continue;
        }
        if (!SpawnSlot(round, &slot)) {
          ScheduleRetry(round, &slot, now, "spawn-failed");
          continue;
        }
        slot.started_at = now;
        slot.last_beat = now;
        slot.phase = Phase::kNeedLoad;
        progressed = true;
        continue;
      }
      if (slot.phase == Phase::kNeedLoad || slot.phase == Phase::kNeedDiscover) {
        StorageCommand command;
        if (slot.phase == Phase::kNeedLoad) {
          command = BuildLoadCommand(round, &slot);
        } else {
          command.type = StorageCommand::Type::kDiscover;
          command.units = *round.units;
        }
        SendCommand(round, &slot, &command, now);
        progressed = true;
        continue;
      }
      // Wait phases: pump replies, then liveness.
      slot.worker.DrainResult();
      slot.rx += slot.worker.TakeResult();
      if (slot.worker.DrainHeartbeats() > 0) slot.last_beat = now;
      bool failed = false;
      while (slot.phase == Phase::kLoadWait ||
             slot.phase == Phase::kDiscoverWait) {
        std::string payload;
        const FrameTake take =
            TakeLengthPrefixedFrame(&slot.rx, &payload, kMaxFrameBytes);
        if (take == FrameTake::kNeedMore) break;
        progressed = true;
        if (take == FrameTake::kMalformed) {
          if (stats_ != nullptr) ++stats_->corrupt_replies;
          FailSlot(round, &slot, now, "corrupt-reply");
          failed = true;
          break;
        }
        if (!HandleFrame(round, &slot, &payload, now, &remaining)) {
          failed = true;
          break;
        }
      }
      if (failed || slot.phase == Phase::kDone || !slot.running) continue;
      if (slot.phase == Phase::kNeedLoad || slot.phase == Phase::kNeedDiscover) {
        continue;  // next command goes out on the next sweep
      }
      if (slot.worker.Poll()) {
        // Died mid-request with no (valid) reply: classify and retry.
        slot.running = false;
        slot.rx.clear();
        slot.synced_boundary = kNoGen;
        if (stats_ != nullptr) ++stats_->worker_deaths;
        ScheduleRetry(round, &slot, now,
                      StorageDeathCause(slot.worker.exit_status()));
        progressed = true;
        continue;
      }
      const bool beat_lost =
          options_.heartbeat_timeout_ms > 0 &&
          now - slot.last_beat > options_.heartbeat_timeout_ms;
      if (beat_lost) {
        if (stats_ != nullptr) {
          ++stats_->heartbeat_timeouts;
        }
        FailSlot(round, &slot, now, "heartbeat-timeout");
        progressed = true;
      }
    }
    if (remaining > 0 && !progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  PruneLogs();
  Reassemble(round, found);
  return true;
}

}  // namespace

const char* StorageFaultKindName(StorageFault::Kind kind) {
  switch (kind) {
    case StorageFault::Kind::kKill:
      return "kill";
    case StorageFault::Kind::kOom:
      return "oom";
    case StorageFault::Kind::kStall:
      return "stall";
    case StorageFault::Kind::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

const char* StorageFaultPhaseName(StorageFault::Phase phase) {
  switch (phase) {
    case StorageFault::Phase::kLoad:
      return "load";
    case StorageFault::Phase::kDiscover:
      return "discover";
  }
  return "unknown";
}

ChaseResult StorageShardChase(const Instance& db, const TgdSet& tgds,
                              const ChaseOptions& chase_options,
                              const StorageShardOptions& storage_options,
                              StorageShardStats* stats) {
  StorageCoordinator coordinator(storage_options, stats);
  ChaseOptions options = chase_options;
  options.discovery_hook = &coordinator;
  // Fork without exec requires a single-threaded parent; the worker
  // processes are the parallelism.
  options.threads = 1;
  return Chase(db, tgds, options);
}

ChaseResult ResumeStorageShardChase(const std::string& checkpoint_dir,
                                    const Instance& db, const TgdSet& tgds,
                                    const ChaseOptions& chase_options,
                                    const StorageShardOptions& storage_options,
                                    ResumeInfo* info,
                                    StorageShardStats* stats) {
  StorageCoordinator coordinator(storage_options, stats);
  ChaseOptions options = chase_options;
  options.discovery_hook = &coordinator;
  options.threads = 1;
  return ResumeChase(checkpoint_dir, db, tgds, options, info);
}

}  // namespace gqe
