#ifndef GQE_SHARD_STORAGE_SHARD_H_
#define GQE_SHARD_STORAGE_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/subprocess.h"
#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "shard/shard_chase.h"

namespace gqe {

/// Deterministic storage-shard fault injection. Unlike the fork-per-round
/// ShardFault, a storage worker is long-lived and serves two kinds of
/// command per round boundary — a state load (seed / delta / rebuild) and
/// a discovery request — so a fault is additionally pinned to the phase
/// it hits. Kill/OOM/stall ride down to the worker inside the matched
/// command frame (child-side delivery keeps them deterministic); corrupt
/// flips a bit in the received reply before validation, exercising the
/// envelope CRC.
struct StorageFault {
  enum class Kind : int {
    kKill = 0,
    kOom = 1,
    kStall = 2,
    kCorrupt = 3,
  };
  enum class Phase : int {
    /// The seed / delta / rebuild command that brings the fragment to the
    /// round boundary (and writes its checkpoint).
    kLoad = 0,
    /// The per-round trigger-discovery command.
    kDiscover = 1,
  };

  /// The chase round boundary (== rounds committed before it).
  uint64_t boundary = 0;
  uint32_t shard = 0;
  int attempt = 1;
  Kind kind = Kind::kKill;
  Phase phase = Phase::kDiscover;
};

const char* StorageFaultKindName(StorageFault::Kind kind);
const char* StorageFaultPhaseName(StorageFault::Phase phase);

/// Configuration of the storage-partitioned saturation run.
struct StorageShardOptions {
  /// Storage shards the instance is hash-partitioned across. Each shard
  /// is one long-lived worker process owning one fragment.
  int shards = 2;

  /// Mid-run resharding: from round `reshard_at_round` on, the instance
  /// is repartitioned across `reshard_to` shards. Unlike the
  /// work-sharded chase this moves data: the old workers are retired and
  /// fresh ones are seeded with the new layout's fragments.
  int64_t reshard_at_round = -1;
  int reshard_to = 0;

  /// Durable state root: `<state_dir>/shard-<s>/fragment-<gen>.frag`
  /// fragment checkpoints plus `<state_dir>/logs/log-<boundary>.log`
  /// retained exchange logs. Empty: a private temp dir, removed on
  /// teardown (recovery within the run still works; recovery across a
  /// coordinator restart needs a real directory).
  std::string state_dir;

  /// Fragment checkpoint generations retained per shard (minimum 2 —
  /// recovery needs a fallback when the newest generation is the
  /// casualty). Retained exchange logs are pruned in lockstep: a log is
  /// deleted only once no retained fragment generation could need it to
  /// replay forward.
  int keep_generations = 2;

  /// Retry budget per (boundary, shard), with BackoffDelayMs jitter
  /// between attempts — same ladder as the work-sharded chase.
  int max_attempts = 3;
  double backoff_base_ms = 2.0;
  double backoff_cap_ms = 100.0;
  uint64_t jitter_seed = 1;

  /// Liveness: workers beat every `heartbeat_interval_ms`; silent for
  /// `heartbeat_timeout_ms` means stalled → SIGKILL → respawn + rebuild.
  double heartbeat_interval_ms = 5.0;
  double heartbeat_timeout_ms = 1000.0;

  /// Deadline for handing a command frame to a worker's pipe. A stalled
  /// worker with a full command pipe must cost at most this long before
  /// being declared dead (the coordinator's write end is non-blocking).
  /// 0: use heartbeat_timeout_ms.
  double command_timeout_ms = 0.0;

  /// Hard kernel caps installed in every storage worker (0 = uncapped).
  WorkerLimits limits;

  /// When a shard exhausts its retry budget (including rebuild
  /// failures), compute its slice inline in the coordinator for the rest
  /// of the layout epoch — still bit-identical. Disabled, the run aborts
  /// with Status::kShardLost at the last committed round boundary.
  bool inline_fallback = true;

  /// Injected faults, matched by (boundary, shard, attempt, phase); each
  /// fires at most once.
  std::vector<StorageFault> faults;
};

/// One recovery-relevant event.
struct StorageShardEvent {
  uint64_t boundary = 0;
  uint32_t shard = 0;
  int attempt = 0;
  /// "sigkill", "oom", "heartbeat-timeout", "corrupt-reply", "bad-reply",
  /// "bad-ack", "rebuild-failed", "spawn-failed", "write-failed",
  /// "command-timeout", "inline-fallback", "reseed", "reshard".
  std::string cause;
};

/// Coordinator-side counters for the whole run.
struct StorageShardStats {
  uint64_t rounds = 0;
  size_t workers_spawned = 0;
  size_t respawns = 0;
  size_t worker_deaths = 0;
  size_t heartbeat_timeouts = 0;
  size_t corrupt_replies = 0;
  size_t bad_acks = 0;
  size_t rebuilds = 0;
  size_t reseeds = 0;
  size_t inline_fallbacks = 0;
  size_t exchanged_bytes = 0;
  size_t exchanged_candidates = 0;
  /// Facts shipped to owners through delta commands (sum over rounds of
  /// delta size — each fact goes to exactly one owner plus the
  /// replicated frontier).
  size_t shipped_facts = 0;
  size_t logs_written = 0;
  size_t logs_pruned = 0;
  /// Largest fragment (owned facts) any shard reported, and the largest
  /// worker RSS seen in an ack. The fragment count is the honest memory
  /// story: fork inherits the parent's resident image copy-on-write, so
  /// worker RSS floors at the coordinator's footprint.
  size_t max_fragment_facts = 0;
  long max_worker_rss_kb = 0;
  double backoff_wait_ms = 0.0;
  double recovery_ms = 0.0;
  int max_shards_used = 0;
  std::vector<StorageShardEvent> events;
};

/// Runs the chase with the fact store hash-partitioned across long-lived
/// storage-shard workers. Each worker owns a fragment of the instance
/// (its facts by content-hash ownership), receives each round's delta
/// once (owned facts appended to the fragment, the whole delta replicated
/// as the discovery frontier), checkpoints the fragment at every round
/// boundary (tmp+fsync+rename), and answers per-round discovery commands
/// with CRC-enveloped candidate exchanges carrying per-command sequence
/// numbers. The coordinator validates every ack against its acknowledged
/// ownership manifest (expected fragment count + rolling content hash),
/// retains each round's delta as a durable exchange log before accepting
/// any ack for that boundary, and survives kill -9 / OOM / stall /
/// corrupt of any worker by respawning it and rebuilding its fragment
/// from the newest good checkpoint generation plus exchange-log replay.
/// Results are bit-identical to Chase(db, tgds, chase_options) at every
/// shard count — facts, order, levels, null ids, witness certificates,
/// checkpoint bytes — across mid-run resharding and coordinator restart.
ChaseResult StorageShardChase(const Instance& db, const TgdSet& tgds,
                              const ChaseOptions& chase_options,
                              const StorageShardOptions& storage_options,
                              StorageShardStats* stats = nullptr);

/// Crash-safe storage-sharded chase: resumes the engine from the newest
/// good generation in `checkpoint_dir` (chase/checkpoint.h), then
/// continues storage-sharded. Workers of a restarted coordinator rebuild
/// their fragments from `storage_options.state_dir` (checkpoint + logs)
/// when usable and are reseeded from the resumed instance otherwise.
ChaseResult ResumeStorageShardChase(const std::string& checkpoint_dir,
                                    const Instance& db, const TgdSet& tgds,
                                    const ChaseOptions& chase_options,
                                    const StorageShardOptions& storage_options,
                                    ResumeInfo* info = nullptr,
                                    StorageShardStats* stats = nullptr);

}  // namespace gqe

#endif  // GQE_SHARD_STORAGE_SHARD_H_
