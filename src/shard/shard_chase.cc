#include "shard/shard_chase.h"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <new>
#include <string>
#include <thread>
#include <utility>

#include "shard/exchange.h"

namespace gqe {

namespace {

/// Shard-worker exit codes. OOM matches serve/worker.h's kWorkerExitOom
/// so operators see one code for kernel-rlimit OOM deaths everywhere.
constexpr int kShardExitOk = 0;
constexpr int kShardExitWriteError = 3;
/// The exchange pipe's reader vanished (EPIPE) — the coordinator died or
/// abandoned the round; mirrors serve/worker.h's supervisor-gone code.
constexpr int kShardExitPeerGone = 4;
constexpr int kShardExitOom = 12;

/// Injected-OOM geometry (the serve chaos idiom): cap the address space
/// well below the probe so the bad_alloc is deterministic no matter how
/// much memory the forked worker already mapped copy-on-write.
constexpr size_t kOomFaultLimitBytes = 64ull << 20;
constexpr size_t kOomFaultProbeBytes = 128ull << 20;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The deterministic slice of one round's discovery owned by `shard`:
/// every unit is walked in canonical order, anchored units fact by fact,
/// and only owned (unit, fact) pairs are searched. Shared verbatim by
/// forked workers and the coordinator's inline fallback, which is why
/// the fallback is bit-identical to the worker it replaces.
void ComputeShardSlice(const ChaseDiscoveryRound& round, uint32_t shard,
                       uint32_t num_shards, ShardExchange* exchange) {
  // Workers run under a fresh unlimited governor: deadlines and budgets
  // are enforced coordinator-side (the barrier, plus kernel rlimits), and
  // a replayed attempt must redo exactly the same search as the lost one
  // instead of inheriting its half-spent budget.
  ExecutionBudget unlimited;
  unlimited.max_facts = 0;
  Governor governor(unlimited);
  const std::vector<ChaseDiscoveryUnit>& units = *round.units;
  for (size_t u = 0; u < units.size(); ++u) {
    const ChaseDiscoveryUnit& unit = units[u];
    if (unit.anchor < 0) {
      if (ShardOfFullPass(unit.tgd_index, num_shards) != shard) continue;
      ShardCandidateGroup group;
      group.unit_index = static_cast<uint32_t>(u);
      group.fact_index = 0;
      RunChaseDiscoveryUnit(unit, *round.tgds, *round.instance,
                            /*hom_threads=*/1, &governor, &group.subs);
      if (!group.subs.empty()) exchange->groups.push_back(std::move(group));
      continue;
    }
    for (size_t f = unit.delta_begin; f < unit.delta_end; ++f) {
      if (ShardOfFact(*round.instance, f, num_shards) != shard) continue;
      ShardCandidateGroup group;
      group.unit_index = static_cast<uint32_t>(u);
      group.fact_index = f;
      RunChaseDiscoveryAtFact(unit.tgd_index, unit.anchor, f, *round.tgds,
                              *round.instance, &governor, &group.subs);
      if (!group.subs.empty()) exchange->groups.push_back(std::move(group));
    }
  }
}

/// Child-side entry point: runs the owned slice against the
/// copy-on-write instance image and ships one CRC-enveloped exchange up
/// the result pipe. Runs in a forked process; the return value becomes
/// the exit code.
int ShardWorkerBody(const ChaseDiscoveryRound& round, uint32_t shard,
                    uint32_t num_shards, int attempt, int inject_fault,
                    const ShardOptions& options, int result_fd,
                    int heartbeat_fd) {
  // Injected process faults run child-side, before any work: a
  // parent-side signal after fork would race a fast worker's clean exit
  // and the fault could dissolve into a successful round. Raising the
  // signal here is still the real thing — the parent sees an ordinary
  // SIGKILL death / heartbeat-silent stall, through the same
  // classification paths an external fault would take.
  if (inject_fault == static_cast<int>(ShardFault::Kind::kKill)) {
    ::raise(SIGKILL);
  } else if (inject_fault == static_cast<int>(ShardFault::Kind::kStall)) {
    ::raise(SIGSTOP);  // frozen pre-heartbeat; the liveness timeout fires
  } else if (inject_fault == static_cast<int>(ShardFault::Kind::kOom)) {
    WorkerLimits limits;
    limits.address_space_bytes = kOomFaultLimitBytes;
    InstallWorkerLimits(limits);
    try {
      // Force the cap to bite now. Direct operator-new: a new[]/delete[]
      // pair may legally be elided, and then no allocation ever happens.
      void* probe = ::operator new(kOomFaultProbeBytes);
      *static_cast<volatile char*>(probe) = 1;
      ::operator delete(probe);
    } catch (const std::bad_alloc&) {
      return kShardExitOom;
    }
  }
  HeartbeatWriter heartbeat(heartbeat_fd, options.heartbeat_interval_ms);
  ShardExchange exchange;
  exchange.shard_id = shard;
  exchange.num_shards = num_shards;
  exchange.attempt = static_cast<uint32_t>(attempt);
  // Fork-per-round workers answer exactly one implicit command, so the
  // round number doubles as the sequence.
  exchange.sequence = round.round;
  exchange.round = round.round;
  exchange.delta_start = round.delta_start;
  exchange.delta_end = round.delta_end;
  exchange.instance_size = round.instance->size();
  ComputeShardSlice(round, shard, num_shards, &exchange);
  const std::string bytes = EncodeShardExchange(exchange);
  int write_errno = 0;
  if (!WriteAllToFd(result_fd, bytes, &write_errno)) {
    return IsPeerGoneErrno(write_errno) ? kShardExitPeerGone
                                        : kShardExitWriteError;
  }
  return kShardExitOk;
}

std::string DeathCause(const WorkerExit& exit) {
  if (exit.signaled) {
    switch (exit.term_signal) {
      case SIGKILL:
        return "sigkill";
      case SIGXCPU:
        return "cpu-limit";
      case SIGSEGV:
        return "sigsegv";
      default:
        return "signal-" + std::to_string(exit.term_signal);
    }
  }
  if (exit.exited) {
    if (exit.exit_code == kShardExitOom) return "oom";
    if (exit.exit_code == kShardExitWriteError) return "write-failed";
    if (exit.exit_code == kShardExitPeerGone) return "coordinator-gone";
    return "exit-" + std::to_string(exit.exit_code);
  }
  return "reaped-unknown";
}

/// The per-round barrier + failure protocol. One instance lives for the
/// whole run (it is the ChaseOptions::discovery_hook), so retry/fault
/// bookkeeping spans rounds.
class ShardCoordinator : public ChaseDiscoveryHook {
 public:
  ShardCoordinator(const ShardOptions& options, ShardStats* stats)
      : options_(options),
        stats_(stats),
        fault_used_(options.faults.size(), false) {}

  bool DiscoverRound(const ChaseDiscoveryRound& round,
                     std::vector<std::vector<Substitution>>* found) override;

 private:
  struct Slot {
    uint32_t shard = 0;
    int attempts = 0;  // attempts started (1-based once spawned)
    bool done = false;
    bool running = false;
    double ready_at = 0.0;     // ms since round start; gate for respawn
    double last_beat = 0.0;    // last heartbeat (or spawn) time
    double started_at = 0.0;   // current attempt's spawn time
    double first_fault_at = -1.0;
    WorkerProcess worker;
    ShardExchange exchange;
  };

  uint32_t ShardsForRound(uint64_t round) const {
    int n = options_.shards;
    if (options_.reshard_at_round >= 0 && options_.reshard_to > 0 &&
        round >= static_cast<uint64_t>(options_.reshard_at_round)) {
      n = options_.reshard_to;
    }
    return n < 1 ? 1 : static_cast<uint32_t>(n);
  }

  /// Consumes a matching injected fault (each entry fires at most once).
  bool TakeFault(uint64_t round, uint32_t shard, int attempt,
                 ShardFault::Kind kind) {
    for (size_t i = 0; i < options_.faults.size(); ++i) {
      const ShardFault& fault = options_.faults[i];
      if (!fault_used_[i] && fault.round == round && fault.shard == shard &&
          fault.attempt == attempt && fault.kind == kind) {
        fault_used_[i] = true;
        return true;
      }
    }
    return false;
  }

  void RecordEvent(const ChaseDiscoveryRound& round, const Slot& slot,
                   std::string cause) {
    if (stats_ == nullptr) return;
    ShardEvent event;
    event.round = round.round;
    event.shard = slot.shard;
    event.attempt = slot.attempts;
    event.cause = std::move(cause);
    stats_->events.push_back(std::move(event));
  }

  /// Marks the attempt failed and schedules the respawn: exponential
  /// backoff with deterministic jitter keyed by (seed, round, shard,
  /// attempt), so a retry storm never synchronizes across shards.
  void ScheduleRetry(const ChaseDiscoveryRound& round, Slot* slot,
                     double now, const std::string& cause) {
    RecordEvent(round, *slot, cause);
    if (slot->first_fault_at < 0) slot->first_fault_at = now;
    const double delay = BackoffDelayMs(
        slot->attempts, options_.backoff_base_ms, options_.backoff_cap_ms,
        options_.jitter_seed,
        Mix64(round.round) ^ (static_cast<uint64_t>(slot->shard) << 32) ^
            static_cast<uint64_t>(slot->attempts));
    slot->ready_at = now + delay;
    if (stats_ != nullptr) stats_->backoff_wait_ms += delay;
  }

  bool SpawnShard(const ChaseDiscoveryRound& round, Slot* slot,
                  uint32_t num_shards) {
    int inject_fault = -1;
    for (ShardFault::Kind kind :
         {ShardFault::Kind::kKill, ShardFault::Kind::kStall,
          ShardFault::Kind::kOom}) {
      if (TakeFault(round.round, slot->shard, slot->attempts, kind)) {
        inject_fault = static_cast<int>(kind);
        break;
      }
    }
    // The closure runs synchronously inside Spawn — in the child branch
    // of the fork — so capturing the round context by reference is safe.
    const ShardOptions& options = options_;
    const uint32_t shard = slot->shard;
    const int attempt = slot->attempts;
    auto body = [&round, &options, shard, num_shards, attempt,
                 inject_fault](int result_fd, int heartbeat_fd) -> int {
      return ShardWorkerBody(round, shard, num_shards, attempt, inject_fault,
                             options, result_fd, heartbeat_fd);
    };
    std::string error;
    WorkerProcess worker;
    if (!WorkerProcess::Spawn(options_.limits, body, &worker, &error)) {
      return false;
    }
    slot->worker = std::move(worker);
    if (stats_ != nullptr) {
      ++stats_->workers_spawned;
      if (slot->attempts > 1) ++stats_->respawns;
    }
    return true;
  }

  /// Classifies a reaped worker. Returns true when its exchange was
  /// accepted; false schedules a retry (the caller records nothing —
  /// this method does).
  bool AcceptExit(const ChaseDiscoveryRound& round, Slot* slot,
                  uint32_t num_shards, double now) {
    const WorkerExit& exit = slot->worker.exit_status();
    if (!exit.exited || exit.exit_code != kShardExitOk) {
      if (stats_ != nullptr) ++stats_->worker_deaths;
      ScheduleRetry(round, slot, now, DeathCause(exit));
      return false;
    }
    std::string bytes = slot->worker.result_bytes();
    if (TakeFault(round.round, slot->shard, slot->attempts,
                  ShardFault::Kind::kCorrupt) &&
        !bytes.empty()) {
      // Simulated wire corruption: one flipped bit, caught by the
      // envelope CRC below — the satellite-2 recoverable-fault path.
      bytes[bytes.size() / 2] ^= 0x20;
    }
    ShardExchange exchange;
    const SnapshotStatus status = DecodeShardExchange(bytes, &exchange);
    if (!status.ok()) {
      if (stats_ != nullptr) ++stats_->corrupt_exchanges;
      ScheduleRetry(round, slot, now, "corrupt-exchange");
      return false;
    }
    if (!ValidateExchange(exchange, round, slot, num_shards)) {
      if (stats_ != nullptr) ++stats_->corrupt_exchanges;
      ScheduleRetry(round, slot, now, "bad-exchange");
      return false;
    }
    if (stats_ != nullptr) {
      stats_->exchanged_bytes += bytes.size();
      for (const ShardCandidateGroup& group : exchange.groups) {
        stats_->exchanged_candidates += group.subs.size();
      }
    }
    slot->exchange = std::move(exchange);
    return true;
  }

  /// Structural + semantic validation of a CRC-clean exchange: the
  /// header must match this exact round and shard layout, and every
  /// group must be an owned, in-range (unit, fact) pair in strictly
  /// increasing order. A payload that fails here is treated exactly like
  /// a corrupt one — retried, never merged.
  bool ValidateExchange(const ShardExchange& exchange,
                        const ChaseDiscoveryRound& round, const Slot* slot,
                        uint32_t num_shards) const {
    const std::vector<ChaseDiscoveryUnit>& units = *round.units;
    if (exchange.shard_id != slot->shard ||
        exchange.num_shards != num_shards ||
        exchange.attempt != static_cast<uint32_t>(slot->attempts) ||
        exchange.sequence != round.round ||
        exchange.round != round.round ||
        exchange.delta_start != round.delta_start ||
        exchange.delta_end != round.delta_end ||
        exchange.instance_size != round.instance->size()) {
      return false;
    }
    bool have_prev = false;
    std::pair<uint32_t, uint64_t> prev{0, 0};
    for (const ShardCandidateGroup& group : exchange.groups) {
      if (group.unit_index >= units.size()) return false;
      const std::pair<uint32_t, uint64_t> key{group.unit_index,
                                              group.fact_index};
      if (have_prev && key <= prev) return false;
      prev = key;
      have_prev = true;
      const ChaseDiscoveryUnit& unit = units[group.unit_index];
      if (unit.anchor < 0) {
        if (group.fact_index != 0 ||
            ShardOfFullPass(unit.tgd_index, num_shards) != slot->shard) {
          return false;
        }
      } else {
        if (group.fact_index < unit.delta_begin ||
            group.fact_index >= unit.delta_end ||
            ShardOfFact(*round.instance, group.fact_index, num_shards) !=
                slot->shard) {
          return false;
        }
      }
    }
    return true;
  }

  void KillAll(std::vector<Slot>* slots) {
    for (Slot& slot : *slots) {
      if (slot.running) {
        slot.worker.Kill(SIGKILL);
        slot.worker.WaitReaped(2000.0);
        slot.running = false;
      }
    }
  }

  const ShardOptions options_;
  ShardStats* stats_;
  std::vector<bool> fault_used_;
};

bool ShardCoordinator::DiscoverRound(
    const ChaseDiscoveryRound& round,
    std::vector<std::vector<Substitution>>* found) {
  const uint32_t num_shards = ShardsForRound(round.round);
  if (stats_ != nullptr) {
    ++stats_->rounds;
    stats_->max_shards_used =
        std::max(stats_->max_shards_used, static_cast<int>(num_shards));
  }

  std::vector<Slot> slots(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) slots[s].shard = s;
  size_t remaining = num_shards;
  const auto round_start = std::chrono::steady_clock::now();

  while (remaining > 0) {
    // The barrier enforces the run's deadline/cancel rails: workers run
    // ungoverned, the coordinator does not.
    if (round.governor->Check() != Status::kCompleted) {
      KillAll(&slots);
      return false;
    }
    const double now = MsSince(round_start);
    bool progressed = false;
    for (Slot& slot : slots) {
      if (slot.done) continue;
      if (!slot.running) {
        if (now < slot.ready_at) continue;
        if (slot.attempts >= options_.max_attempts) {
          if (!options_.inline_fallback) {
            // Structured failure: the shard is irrecoverable and no
            // degradation path is allowed — the engine discards the round
            // and stops with Status::kShardLost at the last committed
            // boundary, from which ResumeShardedChase can continue.
            RecordEvent(round, slot, "shard-lost");
            KillAll(&slots);
            return false;
          }
          // Structured degradation: absorb the lost shard's slice into
          // the coordinator. Same code path as the worker, so the merge
          // below cannot tell the difference.
          slot.exchange = ShardExchange{};
          ComputeShardSlice(round, slot.shard, num_shards, &slot.exchange);
          if (stats_ != nullptr) {
            ++stats_->inline_fallbacks;
            for (const ShardCandidateGroup& group : slot.exchange.groups) {
              stats_->exchanged_candidates += group.subs.size();
            }
          }
          RecordEvent(round, slot, "inline-fallback");
          if (slot.first_fault_at >= 0 && stats_ != nullptr) {
            stats_->recovery_ms += now - slot.first_fault_at;
          }
          slot.done = true;
          --remaining;
          progressed = true;
          continue;
        }
        ++slot.attempts;
        if (!SpawnShard(round, &slot, num_shards)) {
          ScheduleRetry(round, &slot, now, "spawn-failed");
          continue;
        }
        slot.running = true;
        slot.started_at = now;
        slot.last_beat = now;
        progressed = true;
        continue;
      }
      // Running: drain liveness + result, then reap or time out.
      slot.worker.DrainResult();
      if (slot.worker.DrainHeartbeats() > 0) slot.last_beat = now;
      if (slot.worker.Poll()) {
        slot.worker.DrainResult();
        slot.running = false;
        progressed = true;
        if (AcceptExit(round, &slot, num_shards, now)) {
          if (slot.first_fault_at >= 0 && stats_ != nullptr) {
            stats_->recovery_ms += now - slot.first_fault_at;
          }
          slot.done = true;
          --remaining;
        }
        continue;
      }
      const bool beat_lost = options_.heartbeat_timeout_ms > 0 &&
                             now - slot.last_beat >
                                 options_.heartbeat_timeout_ms;
      const bool over_wall = options_.attempt_timeout_ms > 0 &&
                             now - slot.started_at >
                                 options_.attempt_timeout_ms;
      if (beat_lost || over_wall) {
        slot.worker.Kill(SIGKILL);
        slot.worker.WaitReaped(2000.0);
        slot.running = false;
        progressed = true;
        if (stats_ != nullptr) {
          ++stats_->worker_deaths;
          if (beat_lost) ++stats_->heartbeat_timeouts;
        }
        ScheduleRetry(round, &slot, now,
                      beat_lost ? "heartbeat-timeout" : "attempt-timeout");
      }
    }
    if (remaining > 0 && !progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Deterministic reassembly: ownership is an exact cover of the
  // (unit, fact) space, so concatenating every shard's groups and
  // sorting by (unit, fact) reproduces the canonical sequential
  // enumeration; per-group substitution order is already canonical.
  std::vector<const ShardCandidateGroup*> groups;
  for (const Slot& slot : slots) {
    for (const ShardCandidateGroup& group : slot.exchange.groups) {
      groups.push_back(&group);
    }
  }
  std::sort(groups.begin(), groups.end(),
            [](const ShardCandidateGroup* a, const ShardCandidateGroup* b) {
              return a->unit_index != b->unit_index
                         ? a->unit_index < b->unit_index
                         : a->fact_index < b->fact_index;
            });
  for (const ShardCandidateGroup* group : groups) {
    std::vector<Substitution>& out = (*found)[group->unit_index];
    out.insert(out.end(), group->subs.begin(), group->subs.end());
  }
  return true;
}

}  // namespace

const char* ShardFaultKindName(ShardFault::Kind kind) {
  switch (kind) {
    case ShardFault::Kind::kKill:
      return "kill";
    case ShardFault::Kind::kOom:
      return "oom";
    case ShardFault::Kind::kStall:
      return "stall";
    case ShardFault::Kind::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

uint32_t ShardOfContentHash(uint64_t content_hash, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  // Mixing the cached content hash once more decorrelates the shard
  // assignment from the hash's own use in the dedup index.
  return static_cast<uint32_t>(Mix64(content_hash) % num_shards);
}

uint32_t ShardOfFact(const Instance& instance, size_t fact_index,
                     uint32_t num_shards) {
  return ShardOfContentHash(
      instance.store().hash(static_cast<uint32_t>(fact_index)), num_shards);
}

uint32_t ShardOfFullPass(size_t tgd_index, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<uint32_t>(
      Mix64(0x5ca1ab1e00000000ull ^ static_cast<uint64_t>(tgd_index)) %
      num_shards);
}

ChaseResult ShardedChase(const Instance& db, const TgdSet& tgds,
                         const ChaseOptions& chase_options,
                         const ShardOptions& shard_options,
                         ShardStats* stats) {
  ShardCoordinator coordinator(shard_options, stats);
  ChaseOptions options = chase_options;
  options.discovery_hook = &coordinator;
  // Fork without exec requires a single-threaded parent; the worker
  // processes are the parallelism.
  options.threads = 1;
  return Chase(db, tgds, options);
}

ChaseResult ResumeShardedChase(const std::string& checkpoint_dir,
                               const Instance& db, const TgdSet& tgds,
                               const ChaseOptions& chase_options,
                               const ShardOptions& shard_options,
                               ResumeInfo* info, ShardStats* stats) {
  ShardCoordinator coordinator(shard_options, stats);
  ChaseOptions options = chase_options;
  options.discovery_hook = &coordinator;
  options.threads = 1;
  return ResumeChase(checkpoint_dir, db, tgds, options, info);
}

}  // namespace gqe
