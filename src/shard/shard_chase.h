#ifndef GQE_SHARD_SHARD_CHASE_H_
#define GQE_SHARD_SHARD_CHASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/subprocess.h"
#include "chase/chase.h"
#include "chase/checkpoint.h"

namespace gqe {

/// Deterministic shard-fault injection for tests and the chaos smoke: at
/// chase round `round`, on attempt `attempt` (1-based) of shard `shard`,
/// inject one fault. Kill/stall/OOM hit the worker process; corrupt hits
/// the exchange payload after receipt (exercising the CRC detector).
struct ShardFault {
  enum class Kind : int {
    /// The worker raises SIGKILL on itself before doing any work (the
    /// parent sees an ordinary signal death; raising child-side instead
    /// of signalling from the parent keeps the fault deterministic — a
    /// fast worker can't finish before an external signal lands).
    kKill = 0,
    /// The worker installs a tiny RLIMIT_AS and trips it with a
    /// non-elidable allocation probe (the kernel-enforced OOM path).
    kOom = 1,
    /// The worker raises SIGSTOP on itself: it never starts beating and
    /// the heartbeat timeout puts it down.
    kStall = 2,
    /// Flip one bit in the received exchange bytes before validation;
    /// the envelope CRC catches it and the retry path recovers.
    kCorrupt = 3,
  };

  uint64_t round = 0;
  uint32_t shard = 0;
  int attempt = 1;
  Kind kind = Kind::kKill;
};

const char* ShardFaultKindName(ShardFault::Kind kind);

/// Configuration of the sharded saturation run.
struct ShardOptions {
  /// Worker processes the round's discovery is partitioned across.
  /// 1 still exercises the full fork/exchange path (and must be — and is —
  /// bit-identical to the in-process chase).
  int shards = 1;

  /// Mid-run resharding: from round `reshard_at_round` on, rounds are
  /// partitioned across `reshard_to` workers instead of `shards`.
  /// Negative: never reshard. Ownership is recomputed per round, so the
  /// switch needs no data movement — the instance is hash-partitioned
  /// logically, not physically.
  int64_t reshard_at_round = -1;
  int reshard_to = 0;

  /// Retry budget per (round, shard): a faulted shard is respawned and
  /// replayed from the coordinator's committed round state up to
  /// `max_attempts` times, with exponential backoff + deterministic
  /// jitter between attempts (base/subprocess.h BackoffDelayMs).
  int max_attempts = 3;
  double backoff_base_ms = 2.0;
  double backoff_cap_ms = 100.0;
  uint64_t jitter_seed = 1;

  /// Liveness: workers beat every `heartbeat_interval_ms`; a worker
  /// silent for `heartbeat_timeout_ms` is declared stalled and SIGKILLed
  /// (catches SIGSTOP and kernel-level livelocks the exit path misses).
  double heartbeat_interval_ms = 5.0;
  double heartbeat_timeout_ms = 1000.0;

  /// Optional per-attempt wall cap (ms); 0 relies on the heartbeat
  /// timeout and the governor deadline only.
  double attempt_timeout_ms = 0.0;

  /// Hard kernel caps installed in every shard worker (0 = uncapped).
  WorkerLimits limits;

  /// Structured degradation: when a shard exhausts its retry budget, run
  /// its partition inline in the coordinator (the result is still
  /// bit-identical — same work, same order, one process). Disabled, an
  /// irrecoverable shard aborts the run with Status::kShardLost at the
  /// last committed round boundary instead.
  bool inline_fallback = true;

  /// Injected faults (tests, chaos smoke). Matched by (round, shard,
  /// attempt); each entry fires at most once.
  std::vector<ShardFault> faults;
};

/// One recovery-relevant event, for reporting and assertions.
struct ShardEvent {
  uint64_t round = 0;
  uint32_t shard = 0;
  int attempt = 0;
  /// "sigkill", "oom", "heartbeat-timeout", "corrupt-exchange",
  /// "bad-exchange", "spawn-failed", "write-failed", "inline-fallback".
  std::string cause;
};

/// Coordinator-side counters for the whole run.
struct ShardStats {
  uint64_t rounds = 0;
  size_t workers_spawned = 0;
  size_t respawns = 0;
  size_t worker_deaths = 0;
  size_t heartbeat_timeouts = 0;
  size_t corrupt_exchanges = 0;
  size_t inline_fallbacks = 0;
  size_t exchanged_bytes = 0;
  size_t exchanged_candidates = 0;
  double backoff_wait_ms = 0.0;
  double recovery_ms = 0.0;
  int max_shards_used = 0;
  std::vector<ShardEvent> events;
};

/// Shard ownership. Anchored discovery work for fact `fact_index` belongs
/// to ShardOfFact(...); a first-round full pass over TGD `tgd_index`
/// belongs to ShardOfFullPass(...). Both are pure functions of cached
/// content hashes / indexes, so every process computes the same partition
/// and a retry re-derives exactly the lost shard's slice.
uint32_t ShardOfFact(const Instance& instance, size_t fact_index,
                     uint32_t num_shards);
uint32_t ShardOfFullPass(size_t tgd_index, uint32_t num_shards);

/// The partition key underneath ShardOfFact: ownership by content hash
/// alone (FactStore::HashFact), so a coordinator holding a global fact
/// index and a storage worker holding a decoded atom agree on the owner
/// without exchanging indexes.
uint32_t ShardOfContentHash(uint64_t content_hash, uint32_t num_shards);

/// Runs the chase with each round's trigger discovery hash-partitioned
/// across forked shard workers (fork without exec: children see the
/// coordinator's committed instance copy-on-write, so no data is shipped
/// down — only candidate exchanges come back, CRC-enveloped). The
/// coordinator reassembles per-fact candidate groups into the canonical
/// discovery order and feeds the engine's own deterministic merge, so the
/// result — facts, insertion order, levels, null ids, witness, checkpoint
/// bytes — is bit-identical to Chase(db, tgds, chase_options) at every
/// shard count and across mid-run resharding.
///
/// Coordinator threads are forced to 1 (fork without exec requires a
/// single-threaded parent); worker-side discovery is the parallelism.
ChaseResult ShardedChase(const Instance& db, const TgdSet& tgds,
                         const ChaseOptions& chase_options,
                         const ShardOptions& shard_options,
                         ShardStats* stats = nullptr);

/// Crash-safe sharded chase: resumes from the newest good generation in
/// `checkpoint_dir` (chase/checkpoint.h — snapshots are shard-count
/// agnostic, so a run checkpointed under N shards resumes under M), then
/// continues sharded. New round boundaries are checkpointed to the same
/// directory.
ChaseResult ResumeShardedChase(const std::string& checkpoint_dir,
                               const Instance& db, const TgdSet& tgds,
                               const ChaseOptions& chase_options,
                               const ShardOptions& shard_options,
                               ResumeInfo* info = nullptr,
                               ShardStats* stats = nullptr);

}  // namespace gqe

#endif  // GQE_SHARD_SHARD_CHASE_H_
