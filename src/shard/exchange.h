#ifndef GQE_SHARD_EXCHANGE_H_
#define GQE_SHARD_EXCHANGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/serialize.h"
#include "query/substitution.h"

namespace gqe {

/// The candidates one shard discovered for one (unit, anchor-fact) pair.
/// `fact_index` is 0 for full-pass units (anchor < 0); for anchored units
/// it is the absolute fact index the anchor was bound onto. Substitutions
/// are in the canonical enumeration order RunChaseDiscoveryAtFact emits.
struct ShardCandidateGroup {
  uint32_t unit_index = 0;
  uint64_t fact_index = 0;
  std::vector<Substitution> subs;
};

/// One shard's complete contribution to one chase round: a header that
/// pins the exchange to a specific (round, shard layout, delta frontier,
/// attempt) plus the candidate groups in strictly increasing
/// (unit_index, fact_index) order. The coordinator cross-checks every
/// header field against its own round state; any mismatch — a stale
/// retry's late write, a resharded layout, a truncated or bit-flipped
/// payload — is a recoverable shard fault, never a wrong merge.
struct ShardExchange {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  uint32_t attempt = 1;
  /// Coordinator-issued per-round sequence number the exchange must echo.
  /// The discovery-sharded chase uses the round itself; the storage-shard
  /// protocol issues a fresh sequence per command so a late reply from a
  /// superseded attempt can never be mistaken for the current one.
  uint64_t sequence = 0;
  uint64_t round = 0;
  uint64_t delta_start = 0;
  uint64_t delta_end = 0;
  uint64_t instance_size = 0;
  std::vector<ShardCandidateGroup> groups;
};

/// Serializes `exchange` into a kSnapshotKindShardExchange envelope
/// (base/serialize.h: magic | kind | version | size | CRC-32 | payload).
/// Equal exchanges encode to equal bytes.
std::string EncodeShardExchange(const ShardExchange& exchange);

/// Validates the envelope (magic, kind, version, size, CRC) and decodes
/// the payload. Structural damage that survives the CRC (it cannot, but
/// defense in depth) or a truncated tail reports the matching
/// SnapshotError; `out` is only modified on success.
SnapshotStatus DecodeShardExchange(std::string_view bytes,
                                   ShardExchange* out);

}  // namespace gqe

#endif  // GQE_SHARD_EXCHANGE_H_
