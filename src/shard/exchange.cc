#include "shard/exchange.h"

#include <utility>

namespace gqe {

namespace {

// Minimum encoded bytes per claimed element, used to reject absurd counts
// in a (CRC-valid but hostile) payload before allocating for them.
constexpr uint64_t kMinGroupBytes = 4 + 8 + 8;  // unit + fact + sub count
constexpr uint64_t kMinSubBytes = 8;            // entry count
constexpr uint64_t kMinEntryBytes = 8;          // from + to bits

}  // namespace

std::string EncodeShardExchange(const ShardExchange& exchange) {
  BinaryWriter writer;
  writer.WriteU32(exchange.shard_id);
  writer.WriteU32(exchange.num_shards);
  writer.WriteU32(exchange.attempt);
  writer.WriteU64(exchange.sequence);
  writer.WriteU64(exchange.round);
  writer.WriteU64(exchange.delta_start);
  writer.WriteU64(exchange.delta_end);
  writer.WriteU64(exchange.instance_size);
  writer.WriteU64(exchange.groups.size());
  for (const ShardCandidateGroup& group : exchange.groups) {
    writer.WriteU32(group.unit_index);
    writer.WriteU64(group.fact_index);
    writer.WriteU64(group.subs.size());
    for (const Substitution& sub : group.subs) {
      // Bindings in binding order: Substitution iteration is
      // insertion-ordered, so equal mappings encode to equal bytes and
      // the decoded substitution replays Set calls in the same order.
      writer.WriteU64(sub.entries().size());
      for (const auto& [from, to] : sub.entries()) {
        writer.WriteU32(from.bits());
        writer.WriteU32(to.bits());
      }
    }
  }
  return WrapSnapshot(kSnapshotKindShardExchange, writer.buffer());
}

SnapshotStatus DecodeShardExchange(std::string_view bytes,
                                   ShardExchange* out) {
  std::string_view payload;
  SnapshotStatus status =
      UnwrapSnapshot(bytes, kSnapshotKindShardExchange, &payload);
  if (!status.ok()) return status;

  BinaryReader reader(payload);
  ShardExchange exchange;
  uint64_t group_count = 0;
  reader.ReadU32(&exchange.shard_id);
  reader.ReadU32(&exchange.num_shards);
  reader.ReadU32(&exchange.attempt);
  reader.ReadU64(&exchange.sequence);
  reader.ReadU64(&exchange.round);
  reader.ReadU64(&exchange.delta_start);
  reader.ReadU64(&exchange.delta_end);
  reader.ReadU64(&exchange.instance_size);
  if (!reader.ReadU64(&group_count)) {
    return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                "shard exchange: truncated header");
  }
  if (group_count > reader.remaining() / kMinGroupBytes + 1) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "shard exchange: absurd group count");
  }
  exchange.groups.reserve(group_count);
  for (uint64_t g = 0; g < group_count; ++g) {
    ShardCandidateGroup group;
    uint64_t sub_count = 0;
    reader.ReadU32(&group.unit_index);
    reader.ReadU64(&group.fact_index);
    if (!reader.ReadU64(&sub_count)) {
      return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                  "shard exchange: truncated group");
    }
    if (sub_count > reader.remaining() / kMinSubBytes + 1) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "shard exchange: absurd candidate count");
    }
    group.subs.reserve(sub_count);
    for (uint64_t s = 0; s < sub_count; ++s) {
      uint64_t entry_count = 0;
      if (!reader.ReadU64(&entry_count)) {
        return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                    "shard exchange: truncated candidate");
      }
      if (entry_count > reader.remaining() / kMinEntryBytes + 1) {
        return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                    "shard exchange: absurd binding count");
      }
      Substitution sub;
      for (uint64_t e = 0; e < entry_count; ++e) {
        uint32_t from_bits = 0;
        uint32_t to_bits = 0;
        reader.ReadU32(&from_bits);
        if (!reader.ReadU32(&to_bits)) {
          return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                      "shard exchange: truncated binding");
        }
        sub.Set(Term::FromBits(from_bits), Term::FromBits(to_bits));
      }
      group.subs.push_back(std::move(sub));
    }
    exchange.groups.push_back(std::move(group));
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "shard exchange: trailing or missing bytes");
  }
  *out = std::move(exchange);
  return SnapshotStatus::Ok();
}

}  // namespace gqe
