#include "approx/specialization.h"

#include <algorithm>
#include <unordered_set>

#include "query/contraction.h"

namespace gqe {

size_t ForEachSpecialization(
    const CQ& cq,
    const std::function<bool(const Specialization&)>& callback) {
  size_t count = 0;
  bool stopped = false;
  ForEachContraction(cq, [&](const CQ& contraction, const Substitution&) {
    // Enumerate subsets V with answer_vars ⊆ V ⊆ var(contraction).
    std::vector<Term> optional_vars = contraction.ExistentialVariables();
    const size_t n = optional_vars.size();
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      Specialization spec;
      spec.contraction = contraction;
      spec.grounded_vars = contraction.answer_vars();
      for (size_t i = 0; i < n; ++i) {
        if (mask & (uint64_t{1} << i)) {
          spec.grounded_vars.push_back(optional_vars[i]);
        }
      }
      ++count;
      if (!callback(spec)) {
        stopped = true;
        break;
      }
    }
    return !stopped;
  });
  return count;
}

std::vector<Atom> AtomsOutsideV(const CQ& cq,
                                const std::vector<Term>& grounded_vars) {
  std::unordered_set<Term> v_set(grounded_vars.begin(), grounded_vars.end());
  std::vector<Atom> out;
  for (const Atom& atom : cq.atoms()) {
    bool all_in_v = true;
    for (Term t : atom.args()) {
      if (t.IsVariable() && v_set.count(t) == 0) {
        all_in_v = false;
        break;
      }
    }
    if (!all_in_v) out.push_back(atom);
  }
  return out;
}

std::vector<std::vector<Atom>> MaximallyConnectedComponents(
    const CQ& cq, const std::vector<Term>& grounded_vars) {
  std::unordered_set<Term> v_set(grounded_vars.begin(), grounded_vars.end());
  std::vector<Atom> atoms = AtomsOutsideV(cq, grounded_vars);
  // Union-find over atom indices, joined by shared non-V variables.
  std::vector<int> parent(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      bool share = false;
      for (Term t : atoms[i].args()) {
        if (!t.IsVariable() || v_set.count(t) > 0) continue;
        if (atoms[j].Contains(t)) {
          share = true;
          break;
        }
      }
      if (share) parent[find(static_cast<int>(i))] = find(static_cast<int>(j));
    }
  }
  std::vector<std::vector<Atom>> components;
  std::vector<int> component_of(atoms.size(), -1);
  for (size_t i = 0; i < atoms.size(); ++i) {
    int root = find(static_cast<int>(i));
    if (component_of[root] == -1) {
      component_of[root] = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[component_of[root]].push_back(atoms[i]);
  }
  return components;
}

}  // namespace gqe
