#ifndef GQE_APPROX_GROUNDING_H_
#define GQE_APPROX_GROUNDING_H_

#include <vector>

#include "approx/specialization.h"
#include "omq/omq.h"
#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// Σ-groundings of CQ specializations (Definition C.3) for ontologies
/// from G ∩ FULL — the regime the paper's own lower-bound proof reduces
/// to (Theorem D.1: guarded OMQs can be rewritten to full guarded ones).
///
/// A Σ-grounding of a specialization s = (p, V) replaces each maximally
/// [V]-connected component p_i of p[V] by a *guarded full* CQ g_i over
/// (var(p_i) ∩ V) plus at most ar(T) - |var(p_i) ∩ V| fresh variables,
/// such that p_i homomorphically maps into chase(g_i, Σ) fixing the
/// shared variables. Intuitively: g_i is the part of the database a
/// single guarded atom contributes, and p_i must be derivable from it.
struct SigmaGrounding {
  CQ grounding;           // g_s(x̄) = g_0 ∧ g_1 ∧ ... ∧ g_n
  Specialization source;  // the specialization it grounds
};

struct GroundingOptions {
  /// Cap on groundings enumerated per specialization (the space is
  /// exponential in the schema).
  size_t max_per_specialization = 200;

  /// Cap on total groundings.
  size_t max_total = 5000;
};

/// Enumerates Σ-groundings of all specializations of `cq` for a full
/// guarded Σ over the given extended schema (candidate guard atoms range
/// over `schema`). Only groundings whose existential-part treewidth is at
/// most `k` are returned (the Definition C.6 filter); pass a negative k
/// for no filter.
std::vector<SigmaGrounding> EnumerateSigmaGroundings(
    const CQ& cq, const TgdSet& sigma, const Schema& schema, int k,
    const GroundingOptions& options = {});

/// The UCQ_k-approximation of Definition C.6 for OMQs with a full guarded
/// ontology: every disjunct replaced by its treewidth-≤k Σ-groundings.
/// Lemma C.7: the result is contained in Q, agrees with Q on databases of
/// treewidth ≤ k, and contains every (G, UCQ_k) OMQ contained in Q.
Omq GroundingApproximationOmq(const Omq& omq, int k,
                              const GroundingOptions& options = {});

}  // namespace gqe

#endif  // GQE_APPROX_GROUNDING_H_
