#ifndef GQE_APPROX_SPECIALIZATION_H_
#define GQE_APPROX_SPECIALIZATION_H_

#include <functional>
#include <vector>

#include "query/cq.h"

namespace gqe {

/// A specialization of a CQ q (Definition C.1): a contraction p of q
/// together with a variable set V with answer_vars ⊆ V ⊆ var(p). V marks
/// the variables intended to map onto database constants; the rest map
/// into the anonymous (null) part of the chase. Specializations underlie
/// the Σ-grounding-based UCQ_k-approximation of guarded OMQs
/// (Definition C.6).
struct Specialization {
  CQ contraction;
  std::vector<Term> grounded_vars;  // the set V
};

/// Enumerates all specializations of `cq`; stop early by returning false.
/// Returns the number visited (contractions x V-subsets).
size_t ForEachSpecialization(
    const CQ& cq, const std::function<bool(const Specialization&)>& callback);

/// q[V]: the subquery of the contraction obtained by dropping atoms whose
/// variables all lie in V (Appendix C.1).
std::vector<Atom> AtomsOutsideV(const CQ& cq,
                                const std::vector<Term>& grounded_vars);

/// The maximally [V]-connected components of q[V]: connected components
/// of the atoms of q[V] under shared variables *outside* V
/// (Appendix C.1).
std::vector<std::vector<Atom>> MaximallyConnectedComponents(
    const CQ& cq, const std::vector<Term>& grounded_vars);

}  // namespace gqe

#endif  // GQE_APPROX_SPECIALIZATION_H_
