#include "approx/meta.h"

#include "approx/approximation.h"
#include "approx/grounding.h"
#include "cqs/containment.h"
#include "guarded/type_closure.h"
#include "omq/containment.h"

namespace gqe {

MetaResult DecideUniformUcqkEquivalenceCqs(const Cqs& cqs, int k,
                                           Governor* governor) {
  MetaResult result;
  result.k_in_valid_range = k >= MinimumValidK(cqs);
  Cqs approximation = UcqkApproximationCqs(cqs, k);
  result.approximation_disjuncts = approximation.query.num_disjuncts();
  if (approximation.query.num_disjuncts() == 0) {
    result.equivalent = false;
    return result;
  }
  // approximation ⊆ cqs holds by construction (contractions map into the
  // original); the decision is cqs ⊆ approximation.
  if (CqsContained(cqs, approximation, /*engine=*/nullptr,
                   /*fg_chase_level=*/12, governor)) {
    result.equivalent = true;
    result.rewriting = approximation.query;
  }
  if (governor != nullptr) result.status = governor->status();
  return result;
}

MetaResult DecideUcqkEquivalenceOmqFullSchema(const Omq& omq, int k,
                                              Governor* governor) {
  Cqs as_cqs;
  as_cqs.sigma = omq.sigma;
  as_cqs.query = omq.query;
  return DecideUniformUcqkEquivalenceCqs(as_cqs, k, governor);
}

MetaResult DecideUcqkEquivalenceOmqViaGroundings(const Omq& omq, int k,
                                                 Governor* governor) {
  MetaResult result;
  Cqs as_cqs;
  as_cqs.sigma = omq.sigma;
  as_cqs.query = omq.query;
  result.k_in_valid_range = k >= MinimumValidK(as_cqs);
  Omq approximation = GroundingApproximationOmq(omq, k);
  result.approximation_disjuncts = approximation.query.num_disjuncts();
  if (result.approximation_disjuncts == 0) return result;
  // Q_k^a ⊆ Q holds by Lemma C.7(1); decide Q ⊆ Q_k^a.
  if (OmqContainedSameOntology(omq, approximation, /*engine=*/nullptr,
                               governor)) {
    result.equivalent = true;
    result.rewriting = approximation.query;
  }
  if (governor != nullptr) result.status = governor->status();
  return result;
}

int SemanticTreewidthCqs(const Cqs& cqs, int max_k, Governor* governor) {
  for (int k = 1; k <= max_k; ++k) {
    if (governor != nullptr && governor->Tripped()) break;
    if (DecideUniformUcqkEquivalenceCqs(cqs, k, governor).equivalent) {
      return k;
    }
  }
  return -1;
}

}  // namespace gqe
