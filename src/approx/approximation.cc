#include "approx/approximation.h"

#include <algorithm>

#include "query/contraction.h"

namespace gqe {

namespace {

UCQ ContractionApproximation(const UCQ& query, int k) {
  UCQ approximation;
  for (const CQ& disjunct : query.disjuncts()) {
    for (CQ& contraction : ContractionsWithTreewidthAtMost(disjunct, k)) {
      approximation.AddDisjunct(std::move(contraction));
    }
  }
  return approximation;
}

}  // namespace

Cqs UcqkApproximationCqs(const Cqs& cqs, int k) {
  Cqs approximation;
  approximation.sigma = cqs.sigma;
  approximation.query = ContractionApproximation(cqs.query, k);
  return approximation;
}

Omq UcqkApproximationOmqFullSchema(const Omq& omq, int k) {
  Omq approximation;
  approximation.data_schema = omq.data_schema;
  approximation.sigma = omq.sigma;
  approximation.query = ContractionApproximation(omq.query, k);
  return approximation;
}

int MinimumValidK(const Cqs& cqs) {
  int r = SchemaOf(cqs.sigma).MaxArity();
  for (const CQ& cq : cqs.query.disjuncts()) {
    for (const Atom& atom : cq.atoms()) {
      r = std::max(r, atom.arity());
    }
  }
  const int m = std::max(1, MaxHeadAtoms(cqs.sigma));
  return std::max(1, r * m - 1);
}

}  // namespace gqe
