#include "approx/grounding.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <unordered_set>

#include "chase/chase.h"
#include "query/homomorphism.h"
#include "query/substitution.h"

namespace gqe {

namespace {

/// Candidate guarded full CQs for one component: a guard atom over the
/// shared variables plus fresh ones, optionally extended with side atoms
/// over the same variable pool. Sound enumeration (every candidate the
/// paper's Definition C.3 admits has this shape); the side-atom depth is
/// capped, so rarely-needed large groundings may be missed — callers
/// verify the defining property per candidate, never assume it.
void EnumerateGuardedCandidates(
    const std::vector<Term>& shared, const Schema& schema, int fresh_budget,
    const std::function<void(const std::vector<Atom>&,
                             const std::vector<Term>&)>& callback) {
  // Fresh variable pool.
  std::vector<Term> pool = shared;
  for (int i = 0; i < fresh_budget; ++i) {
    pool.push_back(Term::Variable("gy" + std::to_string(i)));
  }
  for (PredicateId guard_pred : schema.predicate_ids()) {
    const int arity = predicates::Arity(guard_pred);
    if (arity < static_cast<int>(shared.size())) continue;
    // Assignments of the guard's positions to pool terms covering all
    // shared variables.
    std::vector<Term> args(arity);
    std::function<void(int)> assign = [&](int pos) {
      if (pos == arity) {
        std::vector<Term> used_shared;
        for (Term s : shared) {
          bool present = false;
          for (Term a : args) {
            if (a == s) present = true;
          }
          if (present) used_shared.push_back(s);
        }
        if (used_shared.size() != shared.size()) return;
        Atom guard(guard_pred, args);
        std::vector<Term> guard_vars;
        guard.CollectVariables(&guard_vars);
        // Base candidate: the guard alone.
        callback({guard}, guard_vars);
        // Extended candidates: one side atom over the guard's variables.
        for (PredicateId side_pred : schema.predicate_ids()) {
          const int side_arity = predicates::Arity(side_pred);
          if (side_arity > static_cast<int>(guard_vars.size()) ||
              side_arity == 0) {
            continue;
          }
          std::vector<Term> side_args(side_arity);
          std::function<void(int)> assign_side = [&](int side_pos) {
            if (side_pos == side_arity) {
              Atom side(side_pred, side_args);
              if (side == guard) return;
              callback({guard, side}, guard_vars);
              return;
            }
            for (Term t : guard_vars) {
              side_args[side_pos] = t;
              assign_side(side_pos + 1);
            }
          };
          assign_side(0);
        }
        return;
      }
      for (Term t : pool) {
        args[pos] = t;
        assign(pos + 1);
      }
    };
    assign(0);
  }
}

/// Does component `piece` map into chase(g, Σ) fixing the shared
/// variables? (the defining condition of Definition C.3).
bool PieceDerivable(const std::vector<Atom>& piece,
                    const std::vector<Term>& shared,
                    const std::vector<Atom>& candidate, const TgdSet& sigma) {
  CQ candidate_cq({}, candidate);
  Instance canonical = candidate_cq.CanonicalInstance();
  ChaseResult chased = Chase(canonical, sigma);
  if (!chased.complete) return false;
  HomOptions options;
  for (Term v : shared) options.fixed.Set(v, CQ::FrozenConstant(v));
  HomomorphismSearch search(piece, chased.instance, options);
  return search.Exists();
}

}  // namespace

std::vector<SigmaGrounding> EnumerateSigmaGroundings(
    const CQ& cq, const TgdSet& sigma, const Schema& schema, int k,
    const GroundingOptions& options) {
  if (!IsGuardedSet(sigma) || !IsFullSet(sigma)) {
    std::fprintf(stderr,
                 "EnumerateSigmaGroundings requires a full guarded set "
                 "(Theorem D.1 regime)\n");
    std::abort();
  }
  const int max_arity = schema.MaxArity();
  std::vector<SigmaGrounding> results;
  std::unordered_set<std::string> seen;

  ForEachSpecialization(cq, [&](const Specialization& spec) {
    if (results.size() >= options.max_total) return false;
    const CQ& p = spec.contraction;
    const std::vector<Term>& v_set = spec.grounded_vars;
    // g0: atoms of p over V only.
    std::vector<Atom> g0;
    for (const Atom& atom : p.atoms()) {
      bool inside = true;
      for (Term t : atom.args()) {
        if (t.IsVariable() &&
            std::find(v_set.begin(), v_set.end(), t) == v_set.end()) {
          inside = false;
          break;
        }
      }
      if (inside) g0.push_back(atom);
    }
    std::vector<std::vector<Atom>> components =
        MaximallyConnectedComponents(p, v_set);
    // Per component: collect admissible g_i candidates.
    std::vector<std::vector<std::vector<Atom>>> per_component(
        components.size());
    for (size_t i = 0; i < components.size(); ++i) {
      std::vector<Term> piece_vars = VariablesOf(components[i]);
      std::vector<Term> shared;
      for (Term v : piece_vars) {
        if (std::find(v_set.begin(), v_set.end(), v) != v_set.end()) {
          shared.push_back(v);
        }
      }
      const int fresh_budget =
          std::max(0, max_arity - static_cast<int>(shared.size()));
      size_t found = 0;
      EnumerateGuardedCandidates(
          shared, schema, fresh_budget,
          [&](const std::vector<Atom>& candidate, const std::vector<Term>&) {
            if (found >= options.max_per_specialization) return;
            if (PieceDerivable(components[i], shared, candidate, sigma)) {
              per_component[i].push_back(candidate);
              ++found;
            }
          });
      if (per_component[i].empty()) return true;  // no grounding for s
    }
    // Cross product of component choices.
    std::vector<size_t> choice(components.size(), 0);
    size_t emitted = 0;
    for (;;) {
      std::vector<Atom> atoms = g0;
      for (size_t i = 0; i < components.size(); ++i) {
        // Rename the fresh variables per component so they stay disjoint.
        Substitution rename;
        for (const Atom& atom : per_component[i][choice[i]]) {
          for (Term t : atom.args()) {
            if (t.IsVariable() &&
                std::find(v_set.begin(), v_set.end(), t) == v_set.end() &&
                !rename.Has(t)) {
              rename.Set(t, Term::Variable(
                                "gz" + std::to_string(i) + "_" +
                                std::to_string(rename.size())));
            }
          }
        }
        for (const Atom& atom : per_component[i][choice[i]]) {
          atoms.push_back(rename.Apply(atom));
        }
      }
      if (!atoms.empty()) {
        CQ grounding(p.answer_vars(), atoms);
        if (k < 0 || grounding.TreewidthOfExistentialPart() <= k) {
          std::string key = grounding.ToString();
          if (seen.insert(key).second) {
            results.push_back({grounding, spec});
            ++emitted;
          }
        }
      }
      if (results.size() >= options.max_total) break;
      // Advance the odometer.
      size_t i = 0;
      while (i < choice.size()) {
        if (++choice[i] < per_component[i].size()) break;
        choice[i] = 0;
        ++i;
      }
      if (i == choice.size() || choice.empty()) break;
    }
    (void)emitted;
    return true;
  });
  return results;
}

Omq GroundingApproximationOmq(const Omq& omq, int k,
                              const GroundingOptions& options) {
  Omq approximation;
  approximation.data_schema = omq.data_schema;
  approximation.sigma = omq.sigma;
  UCQ query;
  for (const CQ& disjunct : omq.query.disjuncts()) {
    for (SigmaGrounding& grounding : EnumerateSigmaGroundings(
             disjunct, omq.sigma, omq.data_schema, k, options)) {
      query.AddDisjunct(std::move(grounding.grounding));
    }
  }
  approximation.query = std::move(query);
  return approximation;
}

}  // namespace gqe
