#ifndef GQE_APPROX_APPROXIMATION_H_
#define GQE_APPROX_APPROXIMATION_H_

#include "cqs/cqs.h"
#include "omq/omq.h"

namespace gqe {

/// The UCQ_k-approximation of a CQS (Proposition 5.11): the UCQ of all
/// contractions of disjuncts of q whose existential-part treewidth is at
/// most k, keeping the same constraints. Always contained in the
/// original; equivalent iff the CQS is uniformly UCQ_k-equivalent (for
/// FG_m constraints and k >= r*m - 1).
Cqs UcqkApproximationCqs(const Cqs& cqs, int k);

/// The analogous approximation of a *full-data-schema* OMQ, justified by
/// Proposition 5.5 (uniform UCQ_k-equivalence of the CQS (Σ,q) coincides
/// with UCQ_k-equivalence of omq(Σ,q)). For general data schemas the
/// paper uses Σ-groundings of specializations (Definition C.6), which
/// are not materialized here; see DESIGN.md §2.6.
Omq UcqkApproximationOmqFullSchema(const Omq& omq, int k);

/// The smallest k for which Proposition 5.11's characterization is exact
/// for this CQS: r*m - 1 with r the schema arity and m the maximum head
/// size.
int MinimumValidK(const Cqs& cqs);

}  // namespace gqe

#endif  // GQE_APPROX_APPROXIMATION_H_
