#ifndef GQE_APPROX_META_H_
#define GQE_APPROX_META_H_

#include <string>

#include "base/governor.h"
#include "cqs/cqs.h"
#include "omq/omq.h"

namespace gqe {

/// Result of the meta-problem decision (Theorems 5.1 / 5.6 / 5.10):
/// whether a CQS (or full-data-schema OMQ) is uniformly
/// UCQ_k-equivalent, and the witnessing rewriting.
struct MetaResult {
  bool equivalent = false;

  /// When equivalent: the rewriting (Σ, q_k^a) with q_k^a ∈ UCQ_k.
  UCQ rewriting;

  /// Disjuncts in the UCQ_k-approximation (before any minimization).
  size_t approximation_disjuncts = 0;

  /// True when k >= r*m - 1, the regime in which Proposition 5.11 makes
  /// the contraction-based approximation complete. Below it the result
  /// is still sound for "equivalent" answers but "not equivalent" may be
  /// conservative (Appendix C.5 shows the regime genuinely differs).
  bool k_in_valid_range = true;

  /// Why the decision ended; a non-Completed status means the containment
  /// tests were cut short, so `equivalent == false` is inconclusive.
  Status status = Status::kCompleted;
};

/// Decides uniform UCQ_k-equivalence of a CQS from (FG_m, UCQ)
/// (Theorem 5.10 shape): compute the approximation S_k^a and test
/// S ⊆ S_k^a via Proposition 4.5. All decision procedures below take an
/// optional shared `governor` bounding the containment chases; results
/// with a non-Completed `status` are inconclusive negatives.
MetaResult DecideUniformUcqkEquivalenceCqs(const Cqs& cqs, int k,
                                           Governor* governor = nullptr);

/// Decides (uniform) UCQ_k-equivalence of a *full-data-schema* guarded
/// OMQ via Proposition 5.5 + Theorem 5.6.
MetaResult DecideUcqkEquivalenceOmqFullSchema(const Omq& omq, int k,
                                              Governor* governor = nullptr);

/// The same decision through the Definition C.6 Σ-grounding
/// approximation (Proposition 5.2's route), available when the ontology
/// is full guarded (the Theorem D.1 regime). Cross-checks the
/// contraction-based procedure; `equivalent` is sound, and complete
/// whenever the grounding enumeration caps are not hit.
MetaResult DecideUcqkEquivalenceOmqViaGroundings(const Omq& omq, int k,
                                                 Governor* governor = nullptr);

/// The smallest k (if any, up to `max_k`) for which the CQS is uniformly
/// UCQ_k-equivalent; -1 if none found. The "semantic treewidth" of the
/// specification. A tripped governor stops the search early (-1 then
/// means "none found up to the k reached").
int SemanticTreewidthCqs(const Cqs& cqs, int max_k,
                         Governor* governor = nullptr);

}  // namespace gqe

#endif  // GQE_APPROX_META_H_
