#include "tgd/tgd.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

namespace gqe {

Tgd::Tgd(std::vector<Atom> body, std::vector<Atom> head)
    : body_(std::move(body)), head_(std::move(head)) {}

std::vector<Term> Tgd::Frontier() const {
  std::vector<Term> body_vars = BodyVariables();
  std::vector<Term> frontier;
  std::vector<Term> head_vars = HeadVariables();
  for (Term v : body_vars) {
    if (std::find(head_vars.begin(), head_vars.end(), v) != head_vars.end()) {
      frontier.push_back(v);
    }
  }
  return frontier;
}

std::vector<Term> Tgd::ExistentialVariables() const {
  std::vector<Term> body_vars = BodyVariables();
  std::vector<Term> existential;
  for (Term v : HeadVariables()) {
    if (std::find(body_vars.begin(), body_vars.end(), v) == body_vars.end()) {
      existential.push_back(v);
    }
  }
  return existential;
}

bool Tgd::IsGuarded() const { return body_.empty() || GuardIndex() >= 0; }

bool Tgd::IsFrontierGuarded() const {
  return body_.empty() || FrontierGuardIndex() >= 0;
}

int Tgd::GuardIndex() const {
  std::vector<Term> body_vars = BodyVariables();
  for (size_t i = 0; i < body_.size(); ++i) {
    if (body_[i].ContainsAll(body_vars)) return static_cast<int>(i);
  }
  return -1;
}

int Tgd::FrontierGuardIndex() const {
  std::vector<Term> frontier = Frontier();
  for (size_t i = 0; i < body_.size(); ++i) {
    if (body_[i].ContainsAll(frontier)) return static_cast<int>(i);
  }
  return -1;
}

bool Tgd::Validate(std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (head_.empty()) return fail("TGD with empty head");
  for (const Atom& atom : body_) {
    for (Term t : atom.args()) {
      if (!t.IsVariable()) return fail("TGD body mentions a constant");
    }
  }
  for (const Atom& atom : head_) {
    for (Term t : atom.args()) {
      if (!t.IsVariable()) return fail("TGD head mentions a constant");
    }
  }
  return true;
}

std::string Tgd::ToString() const {
  std::string out = body_.empty() ? "true" : AtomsToString(body_);
  out += " -> ";
  std::vector<Term> existential = ExistentialVariables();
  if (!existential.empty()) {
    out += "exists ";
    for (size_t i = 0; i < existential.size(); ++i) {
      if (i > 0) out += ",";
      out += existential[i].ToString();
    }
    out += ". ";
  }
  out += AtomsToString(head_);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tgd& tgd) {
  return os << tgd.ToString();
}

bool IsGuardedSet(const TgdSet& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& t) { return t.IsGuarded(); });
}

bool IsFrontierGuardedSet(const TgdSet& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& t) { return t.IsFrontierGuarded(); });
}

bool IsLinearSet(const TgdSet& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& t) { return t.IsLinear(); });
}

bool IsFullSet(const TgdSet& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& t) { return t.IsFull(); });
}

int MaxHeadAtoms(const TgdSet& tgds) {
  int max_atoms = 0;
  for (const Tgd& tgd : tgds) {
    max_atoms = std::max(max_atoms, static_cast<int>(tgd.head().size()));
  }
  return max_atoms;
}

int MaxRuleVariables(const TgdSet& tgds) {
  int max_vars = 0;
  for (const Tgd& tgd : tgds) {
    max_vars = std::max(max_vars,
                        static_cast<int>(tgd.BodyVariables().size()));
    max_vars = std::max(max_vars,
                        static_cast<int>(tgd.HeadVariables().size()));
  }
  return max_vars;
}

Schema SchemaOf(const TgdSet& tgds) {
  Schema schema;
  for (const Tgd& tgd : tgds) {
    for (const Atom& atom : tgd.body()) schema.Add(atom.predicate());
    for (const Atom& atom : tgd.head()) schema.Add(atom.predicate());
  }
  return schema;
}

bool IsWeaklyAcyclic(const TgdSet& tgds) {
  // Positions are (predicate, index) pairs.
  using Position = std::pair<PredicateId, int>;
  std::set<Position> positions;
  std::map<Position, std::set<Position>> normal_edges;
  std::map<Position, std::set<Position>> special_edges;
  for (const Tgd& tgd : tgds) {
    for (const Atom& atom : tgd.body()) {
      for (int i = 0; i < atom.arity(); ++i) {
        positions.insert({atom.predicate(), i});
      }
    }
    for (const Atom& atom : tgd.head()) {
      for (int i = 0; i < atom.arity(); ++i) {
        positions.insert({atom.predicate(), i});
      }
    }
    std::vector<Term> frontier = tgd.Frontier();
    std::vector<Term> existential = tgd.ExistentialVariables();
    for (Term x : frontier) {
      for (const Atom& body_atom : tgd.body()) {
        for (int i = 0; i < body_atom.arity(); ++i) {
          if (body_atom.args()[i] != x) continue;
          const Position from{body_atom.predicate(), i};
          for (const Atom& head_atom : tgd.head()) {
            for (int j = 0; j < head_atom.arity(); ++j) {
              if (head_atom.args()[j] == x) {
                normal_edges[from].insert({head_atom.predicate(), j});
              }
              if (std::find(existential.begin(), existential.end(),
                            head_atom.args()[j]) != existential.end()) {
                special_edges[from].insert({head_atom.predicate(), j});
              }
            }
          }
        }
      }
    }
  }
  // Reachability over the union graph.
  auto reaches = [&](const Position& from, const Position& to) {
    std::set<Position> seen = {from};
    std::vector<Position> stack = {from};
    while (!stack.empty()) {
      Position p = stack.back();
      stack.pop_back();
      if (p == to) return true;
      for (const auto& edges : {normal_edges, special_edges}) {
        auto it = edges.find(p);
        if (it == edges.end()) continue;
        for (const Position& q : it->second) {
          if (seen.insert(q).second) stack.push_back(q);
        }
      }
    }
    return false;
  };
  // A special edge u -> v lies on a cycle iff v reaches u.
  for (const auto& [u, targets] : special_edges) {
    for (const Position& v : targets) {
      if (reaches(v, u)) return false;
    }
  }
  return true;
}

bool IsObliviousChaseTerminating(const TgdSet& tgds) {
  TgdSet enriched;
  enriched.reserve(tgds.size());
  for (size_t i = 0; i < tgds.size(); ++i) {
    std::vector<Term> body_vars = tgds[i].BodyVariables();
    std::vector<Atom> head = tgds[i].head();
    if (!body_vars.empty()) {
      const PredicateId aux = predicates::Intern(
          "_obliv_aux" + std::to_string(i) + "_" +
              std::to_string(body_vars.size()),
          static_cast<int>(body_vars.size()));
      head.push_back(Atom(aux, body_vars));
    }
    enriched.emplace_back(tgds[i].body(), std::move(head));
  }
  return IsWeaklyAcyclic(enriched);
}

std::string TgdSetToString(const TgdSet& tgds) {
  std::string out;
  for (const Tgd& tgd : tgds) {
    out += tgd.ToString() + ".\n";
  }
  return out;
}

}  // namespace gqe
