#ifndef GQE_TGD_TGD_H_
#define GQE_TGD_TGD_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "base/atom.h"
#include "base/schema.h"
#include "base/term.h"

namespace gqe {

/// A tuple-generating dependency ϕ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄) (paper, Section 2):
/// body ϕ (possibly empty), head ψ (non-empty). All terms are variables
/// (TGDs are constant-free); head variables absent from the body are
/// implicitly existentially quantified.
class Tgd {
 public:
  Tgd() = default;
  Tgd(std::vector<Atom> body, std::vector<Atom> head);

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Atom>& head() const { return head_; }

  /// Variables occurring in the body (order of first occurrence).
  std::vector<Term> BodyVariables() const { return VariablesOf(body_); }
  std::vector<Term> HeadVariables() const { return VariablesOf(head_); }

  /// fr(σ): variables occurring in both body and head.
  std::vector<Term> Frontier() const;

  /// z̄: head variables not occurring in the body.
  std::vector<Term> ExistentialVariables() const;

  /// Guarded (class G): empty body, or some body atom contains every body
  /// variable.
  bool IsGuarded() const;

  /// Frontier-guarded (class FG): empty body, or some body atom contains
  /// every frontier variable.
  bool IsFrontierGuarded() const;

  /// Linear (class L): exactly one body atom.
  bool IsLinear() const { return body_.size() == 1; }

  /// Full (class FULL): no existentially quantified head variables.
  bool IsFull() const { return ExistentialVariables().empty(); }

  /// Index into body() of a guard atom (containing all body variables),
  /// or -1.
  int GuardIndex() const;

  /// Index into body() of a frontier guard (containing all frontier
  /// variables), or -1.
  int FrontierGuardIndex() const;

  /// Well-formedness: non-empty head, constant-free, frontier-safe.
  bool Validate(std::string* why = nullptr) const;

  std::string ToString() const;

 private:
  std::vector<Atom> body_;
  std::vector<Atom> head_;
};

std::ostream& operator<<(std::ostream& os, const Tgd& tgd);

/// A finite set of TGDs (the paper's Σ).
using TgdSet = std::vector<Tgd>;

/// Class tests for sets.
bool IsGuardedSet(const TgdSet& tgds);
bool IsFrontierGuardedSet(const TgdSet& tgds);
bool IsLinearSet(const TgdSet& tgds);
bool IsFullSet(const TgdSet& tgds);

/// Max number of head atoms over the set (the m of FG_m).
int MaxHeadAtoms(const TgdSet& tgds);

/// Max number of body variables / head variables over the set (bag width
/// for guarded reasoning).
int MaxRuleVariables(const TgdSet& tgds);

/// sch(Σ): all predicates occurring in the set.
Schema SchemaOf(const TgdSet& tgds);

/// Weak acyclicity [Fagin et al.]: the *restricted* chase of any database
/// terminates. Builds the position dependency graph and rejects cycles
/// through "special" (existential-creating) edges.
bool IsWeaklyAcyclic(const TgdSet& tgds);

/// Sufficient condition for termination of the *oblivious* chase (the
/// paper's reference chase): weak acyclicity of the set enriched with one
/// auxiliary head atom per TGD carrying all its body variables, which
/// makes every body variable relevant to trigger identity.
bool IsObliviousChaseTerminating(const TgdSet& tgds);

std::string TgdSetToString(const TgdSet& tgds);

}  // namespace gqe

#endif  // GQE_TGD_TGD_H_
