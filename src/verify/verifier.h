#ifndef GQE_VERIFY_VERIFIER_H_
#define GQE_VERIFY_VERIFIER_H_

#include <string>

#include "base/instance.h"
#include "query/cq.h"
#include "tgd/tgd.h"
#include "verify/witness.h"

namespace gqe {

/// Structured rejection reasons. A verifier never says just "no": every
/// rejection carries the code of the violated rule plus a human-readable
/// reason naming the offending step / atom / index, so adversarial or
/// corrupted witnesses are diagnosable (tests/verify_test.cc asserts on
/// these codes).
enum class VerifyCode : int {
  kOk = 0,
  kNoWitness = 1,           // nothing to check
  kMalformed = 2,           // sizes / indices inconsistent with the inputs
  kBadTgdIndex = 3,         // derivation step names a TGD out of range
  kNotGround = 4,           // an image / grounded atom still has variables
  kBodyNotSatisfied = 5,    // guard match not present at replay time
  kNullNotFresh = 6,        // an invented null already occurs earlier
  kDuplicateStep = 7,       // the same trigger fired twice
  kFactCountMismatch = 8,   // replay size != claimed final_facts
  kDigestMismatch = 9,      // replay digest != claimed instance_crc
  kNotAFixpoint = 10,       // claimed complete, but replay violates Σ
  kBadDisjunct = 11,        // hom witness names a disjunct out of range
  kBadAssignment = 12,      // non-variable key / non-ground image / clash
  kAnswerMismatch = 13,     // assignment does not send x̄ to the answer
  kAtomNotInInstance = 14,  // a grounded query atom is missing
  kBadJoinTree = 15,        // not a tree / order not children-first
  kRunningIntersection = 16,  // a variable's atoms are not connected
  kRewriteUnsound = 17,     // chased image does not satisfy the query
  kResourceLimit = 18,      // the checker's own replay budget tripped
};

const char* VerifyCodeName(VerifyCode code);

struct VerifyResult {
  VerifyCode code = VerifyCode::kOk;
  std::string reason;

  bool ok() const { return code == VerifyCode::kOk; }

  static VerifyResult Ok() { return VerifyResult{}; }
  static VerifyResult Fail(VerifyCode code, std::string reason) {
    return VerifyResult{code, std::move(reason)};
  }
};

struct DerivationCheckOptions {
  /// Also check the fixpoint claim: when the witness says `complete`,
  /// require Satisfies(replay, Σ). Off by default (it costs a
  /// homomorphism search per TGD); the serve supervisor turns it on for
  /// results claiming exactness.
  bool check_model = false;
};

/// Replays a chase derivation log step-by-step from `db` under `tgds`:
/// every step must name a valid TGD, present ground body images whose
/// grounded body atoms already exist, and invent only globally fresh
/// labelled nulls; no trigger may fire twice. When the log claims
/// `replay_exact`, the replayed instance must match `final_facts` and
/// `instance_crc` bit-for-bit. On success `replayed` (optional) receives
/// the replayed instance — facts in exactly the insertion order the
/// original engine committed them.
VerifyResult VerifyDerivation(const Instance& db, const TgdSet& tgds,
                              const DerivationWitness& witness,
                              Instance* replayed = nullptr,
                              const DerivationCheckOptions& options = {});

/// Checks a homomorphism certificate atom-by-atom: the named disjunct's
/// variables are mapped to ground terms, answer variables land on the
/// claimed answer tuple, and every grounded query atom is a fact of
/// `instance`.
VerifyResult VerifyHomomorphism(const UCQ& query, const Instance& instance,
                                const HomWitness& witness);

/// Checks a join-tree certificate against the query it claims to cover:
/// `parent`/`order` describe a forest over the atoms, `order` lists
/// children before parents, and every variable satisfies the
/// running-intersection property (its atoms induce a connected subtree).
VerifyResult VerifyJoinTree(const CQ& cq, const JoinTreeWitness& witness);

/// Checks linear-rewriting provenance: the recorded rewritten CQ maps
/// into the database via the recorded homomorphism, and chasing the
/// homomorphic image of its body under `sigma` (to level
/// `chase_depth` + 1, under a small local budget) satisfies the
/// *original* query at the claimed answer — i.e. the fired disjunct is
/// sound, independent of the rewriting engine that produced it.
VerifyResult VerifyRewriteProvenance(const Instance& db, const TgdSet& sigma,
                                     const UCQ& original,
                                     const RewriteWitness& witness,
                                     const WitnessOptions& options = {});

}  // namespace gqe

#endif  // GQE_VERIFY_VERIFIER_H_
