#include "verify/verifier.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/governor.h"
#include "chase/chase.h"
#include "query/evaluation.h"
#include "query/substitution.h"

namespace gqe {

const char* VerifyCodeName(VerifyCode code) {
  switch (code) {
    case VerifyCode::kOk: return "ok";
    case VerifyCode::kNoWitness: return "no-witness";
    case VerifyCode::kMalformed: return "malformed";
    case VerifyCode::kBadTgdIndex: return "bad-tgd-index";
    case VerifyCode::kNotGround: return "not-ground";
    case VerifyCode::kBodyNotSatisfied: return "body-not-satisfied";
    case VerifyCode::kNullNotFresh: return "null-not-fresh";
    case VerifyCode::kDuplicateStep: return "duplicate-step";
    case VerifyCode::kFactCountMismatch: return "fact-count-mismatch";
    case VerifyCode::kDigestMismatch: return "digest-mismatch";
    case VerifyCode::kNotAFixpoint: return "not-a-fixpoint";
    case VerifyCode::kBadDisjunct: return "bad-disjunct";
    case VerifyCode::kBadAssignment: return "bad-assignment";
    case VerifyCode::kAnswerMismatch: return "answer-mismatch";
    case VerifyCode::kAtomNotInInstance: return "atom-not-in-instance";
    case VerifyCode::kBadJoinTree: return "bad-join-tree";
    case VerifyCode::kRunningIntersection: return "running-intersection";
    case VerifyCode::kRewriteUnsound: return "rewrite-unsound";
    case VerifyCode::kResourceLimit: return "resource-limit";
  }
  return "unknown";
}

VerifyResult VerifyDerivation(const Instance& db, const TgdSet& tgds,
                              const DerivationWitness& witness,
                              Instance* replayed,
                              const DerivationCheckOptions& options) {
  if (!witness.collected) {
    return VerifyResult::Fail(VerifyCode::kNoWitness,
                              "derivation log was not collected");
  }
  Instance replay;
  replay.InsertAll(db);

  // Null ids already in use: everything in the database plus every null
  // a previous step invented. A step's fresh nulls must avoid all of
  // them (and each other) — that is precisely the oblivious chase's
  // freshness contract.
  std::unordered_set<uint32_t> used_nulls;
  for (Term t : db.ActiveDomain()) {
    if (t.IsNull()) used_nulls.insert(t.id());
  }

  std::unordered_set<std::string> fired;
  for (size_t s = 0; s < witness.steps.size(); ++s) {
    const DerivationStep& step = witness.steps[s];
    const std::string at = "step " + std::to_string(s);
    if (step.tgd_index >= tgds.size()) {
      return VerifyResult::Fail(
          VerifyCode::kBadTgdIndex,
          at + ": tgd index " + std::to_string(step.tgd_index) +
              " out of range (|Σ| = " + std::to_string(tgds.size()) + ")");
    }
    const Tgd& tgd = tgds[step.tgd_index];
    const std::vector<Term> body_vars = tgd.BodyVariables();
    if (step.body_images.size() != body_vars.size()) {
      return VerifyResult::Fail(
          VerifyCode::kMalformed,
          at + ": " + std::to_string(step.body_images.size()) +
              " body images for " + std::to_string(body_vars.size()) +
              " body variables");
    }
    Substitution sub;
    for (size_t i = 0; i < body_vars.size(); ++i) {
      if (!step.body_images[i].IsGround()) {
        return VerifyResult::Fail(
            VerifyCode::kNotGround,
            at + ": body image " + step.body_images[i].ToString() +
                " is not ground");
      }
      sub.Set(body_vars[i], step.body_images[i]);
    }
    // The guard match must exist *at this point of the replay* — an
    // out-of-order log (a step using facts only derived later) fails
    // here even if the full run would eventually contain them.
    for (const Atom& body_atom : tgd.body()) {
      Atom grounded = sub.Apply(body_atom);
      if (!grounded.IsGround()) {
        return VerifyResult::Fail(
            VerifyCode::kNotGround,
            at + ": body atom " + grounded.ToString() + " not grounded");
      }
      if (!replay.Contains(grounded)) {
        return VerifyResult::Fail(
            VerifyCode::kBodyNotSatisfied,
            at + ": body atom " + grounded.ToString() +
                " is not in the instance at this point of the replay");
      }
    }
    // One firing per trigger: the oblivious chase keys triggers by (TGD,
    // body image); a repeated key is a forged log.
    std::string key = std::to_string(step.tgd_index);
    for (Term t : step.body_images) {
      key += ',';
      key += std::to_string(t.bits());
    }
    if (!fired.insert(key).second) {
      return VerifyResult::Fail(
          VerifyCode::kDuplicateStep,
          at + ": trigger (tgd " + std::to_string(step.tgd_index) +
              ", same body image) already fired");
    }
    const std::vector<Term> existential = tgd.ExistentialVariables();
    if (step.existential_images.size() != existential.size()) {
      return VerifyResult::Fail(
          VerifyCode::kMalformed,
          at + ": " + std::to_string(step.existential_images.size()) +
              " existential images for " + std::to_string(existential.size()) +
              " existential variables");
    }
    for (size_t i = 0; i < existential.size(); ++i) {
      Term fresh = step.existential_images[i];
      if (!fresh.IsNull()) {
        return VerifyResult::Fail(
            VerifyCode::kNotGround,
            at + ": existential image " + fresh.ToString() +
                " is not a labelled null");
      }
      if (!used_nulls.insert(fresh.id()).second) {
        return VerifyResult::Fail(
            VerifyCode::kNullNotFresh,
            at + ": null " + fresh.ToString() + " is not fresh");
      }
      sub.Set(existential[i], fresh);
    }
    for (const Atom& head_atom : tgd.head()) {
      Atom grounded = sub.Apply(head_atom);
      if (!grounded.IsGround()) {
        return VerifyResult::Fail(
            VerifyCode::kNotGround,
            at + ": head atom " + grounded.ToString() + " not grounded");
      }
      replay.Insert(grounded);
    }
  }

  if (witness.replay_exact) {
    if (replay.size() != witness.final_facts) {
      return VerifyResult::Fail(
          VerifyCode::kFactCountMismatch,
          "replay produced " + std::to_string(replay.size()) +
              " facts, log claims " + std::to_string(witness.final_facts));
    }
    const uint32_t crc = InstanceTextCrc(replay);
    if (crc != witness.instance_crc) {
      return VerifyResult::Fail(VerifyCode::kDigestMismatch,
                                "replay digest does not match the log");
    }
  }
  if (options.check_model && witness.complete && witness.replay_exact &&
      !Satisfies(replay, tgds)) {
    return VerifyResult::Fail(
        VerifyCode::kNotAFixpoint,
        "log claims a fixpoint but the replay violates Σ");
  }
  if (replayed != nullptr) *replayed = std::move(replay);
  return VerifyResult::Ok();
}

VerifyResult VerifyHomomorphism(const UCQ& query, const Instance& instance,
                                const HomWitness& witness) {
  if (witness.disjunct >= query.num_disjuncts()) {
    return VerifyResult::Fail(
        VerifyCode::kBadDisjunct,
        "disjunct " + std::to_string(witness.disjunct) + " out of range (" +
            std::to_string(query.num_disjuncts()) + " disjuncts)");
  }
  const CQ& cq = query.disjuncts()[witness.disjunct];
  if (witness.answer.size() != cq.answer_vars().size()) {
    return VerifyResult::Fail(
        VerifyCode::kMalformed,
        "answer arity " + std::to_string(witness.answer.size()) +
            " != query arity " + std::to_string(cq.answer_vars().size()));
  }
  Substitution sub;
  for (const auto& [from, to] : witness.assignment) {
    if (!from.IsVariable()) {
      return VerifyResult::Fail(
          VerifyCode::kBadAssignment,
          "assignment key " + from.ToString() + " is not a variable");
    }
    if (!to.IsGround()) {
      return VerifyResult::Fail(
          VerifyCode::kBadAssignment,
          "assignment image " + to.ToString() + " is not ground");
    }
    if (sub.Has(from) && sub.Apply(from) != to) {
      return VerifyResult::Fail(
          VerifyCode::kBadAssignment,
          "variable " + from.ToString() + " mapped twice, differently");
    }
    sub.Set(from, to);
  }
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    Term image = sub.Apply(cq.answer_vars()[i]);
    if (image != witness.answer[i]) {
      return VerifyResult::Fail(
          VerifyCode::kAnswerMismatch,
          "answer variable " + cq.answer_vars()[i].ToString() + " maps to " +
              image.ToString() + ", claimed answer has " +
              witness.answer[i].ToString());
    }
  }
  for (const Atom& atom : cq.atoms()) {
    Atom grounded = sub.Apply(atom);
    if (!grounded.IsGround()) {
      return VerifyResult::Fail(
          VerifyCode::kBadAssignment,
          "query atom " + grounded.ToString() + " not fully grounded");
    }
    if (!instance.Contains(grounded)) {
      return VerifyResult::Fail(
          VerifyCode::kAtomNotInInstance,
          "grounded atom " + grounded.ToString() + " is not in the instance");
    }
  }
  return VerifyResult::Ok();
}

VerifyResult VerifyJoinTree(const CQ& cq, const JoinTreeWitness& witness) {
  const size_t n = cq.atoms().size();
  if (witness.parent.size() != n || witness.order.size() != n) {
    return VerifyResult::Fail(
        VerifyCode::kMalformed,
        "certificate covers " + std::to_string(witness.parent.size()) +
            " atoms, query has " + std::to_string(n));
  }
  std::vector<int32_t> position(n, -1);
  for (size_t i = 0; i < n; ++i) {
    int32_t at = witness.order[i];
    if (at < 0 || static_cast<size_t>(at) >= n || position[at] != -1) {
      return VerifyResult::Fail(VerifyCode::kBadJoinTree,
                                "order is not a permutation of the atoms");
    }
    position[at] = static_cast<int32_t>(i);
  }
  for (size_t i = 0; i < n; ++i) {
    int32_t p = witness.parent[i];
    if (p == static_cast<int32_t>(i) || p < -1 ||
        (p >= 0 && static_cast<size_t>(p) >= n)) {
      return VerifyResult::Fail(
          VerifyCode::kBadJoinTree,
          "atom " + std::to_string(i) + " has invalid parent " +
              std::to_string(p));
    }
    // Children before parents makes the forest acyclic by construction.
    if (p >= 0 && position[i] >= position[p]) {
      return VerifyResult::Fail(
          VerifyCode::kBadJoinTree,
          "atom " + std::to_string(i) +
              " is processed after its parent " + std::to_string(p));
    }
  }
  // Running intersection, per variable: the atoms mentioning v must be
  // connected using only tree edges whose *both* endpoints mention v.
  std::vector<Term> vars = VariablesOf(cq.atoms());
  for (Term v : vars) {
    std::vector<size_t> with_v;
    for (size_t i = 0; i < n; ++i) {
      if (cq.atoms()[i].Contains(v)) with_v.push_back(i);
    }
    if (with_v.size() <= 1) continue;
    std::vector<size_t> root(n);
    std::iota(root.begin(), root.end(), 0);
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (root[x] != x) x = root[x] = root[root[x]];
      return x;
    };
    for (size_t i = 0; i < n; ++i) {
      int32_t p = witness.parent[i];
      if (p >= 0 && cq.atoms()[i].Contains(v) &&
          cq.atoms()[static_cast<size_t>(p)].Contains(v)) {
        root[find(i)] = find(static_cast<size_t>(p));
      }
    }
    for (size_t i = 1; i < with_v.size(); ++i) {
      if (find(with_v[i]) != find(with_v[0])) {
        return VerifyResult::Fail(
            VerifyCode::kRunningIntersection,
            "variable " + v.ToString() + ": atoms " +
                std::to_string(with_v[0]) + " and " +
                std::to_string(with_v[i]) +
                " are not connected through atoms containing it");
      }
    }
  }
  return VerifyResult::Ok();
}

VerifyResult VerifyRewriteProvenance(const Instance& db, const TgdSet& sigma,
                                     const UCQ& original,
                                     const RewriteWitness& witness,
                                     const WitnessOptions& options) {
  if (witness.rewritten.arity() != original.arity()) {
    return VerifyResult::Fail(
        VerifyCode::kMalformed,
        "rewritten CQ arity " + std::to_string(witness.rewritten.arity()) +
            " != query arity " + std::to_string(original.arity()));
  }
  // The recorded homomorphism must place the rewritten disjunct in the
  // *database* at the claimed answer.
  HomWitness hom = witness.hom;
  hom.disjunct = 0;
  VerifyResult placed = VerifyHomomorphism(UCQ({witness.rewritten}), db, hom);
  if (!placed.ok()) return placed;
  // Soundness of the disjunct itself, independent of the rewriting
  // engine: chase the homomorphic image of its body and require the
  // original query to hold there at the same answer. Runs under a local
  // budget so a forged huge-depth witness cannot stall the checker.
  Substitution sub;
  for (const auto& [from, to] : hom.assignment) sub.Set(from, to);
  Instance image;
  for (const Atom& atom : witness.rewritten.atoms()) {
    image.Insert(sub.Apply(atom));
  }
  ChaseOptions chase_options;
  chase_options.max_level = static_cast<int>(witness.chase_depth) + 1;
  chase_options.budget.max_facts = options.certify_max_facts;
  ChaseResult chased = Chase(image, sigma, chase_options);
  if (chased.outcome.status != Status::kCompleted) {
    return VerifyResult::Fail(
        VerifyCode::kResourceLimit,
        "replay chase tripped before level " +
            std::to_string(witness.chase_depth + 1));
  }
  if (!HoldsUCQ(original, chased.instance, hom.answer)) {
    return VerifyResult::Fail(
        VerifyCode::kRewriteUnsound,
        "chased image of the fired disjunct does not satisfy the original "
        "query at the claimed answer");
  }
  return VerifyResult::Ok();
}

}  // namespace gqe
