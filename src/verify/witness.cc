#include "verify/witness.h"

#include <algorithm>
#include <limits>

namespace gqe {

uint32_t InstanceTextCrc(const Instance& instance) {
  std::vector<std::string> lines;
  lines.reserve(instance.size());
  for (const Atom& fact : instance.atoms()) lines.push_back(fact.ToString());
  std::sort(lines.begin(), lines.end());
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return Crc32(text);
}

void EncodeTermByName(Term term, BinaryWriter* writer) {
  writer->WriteU8(static_cast<uint8_t>(term.kind()));
  if (term.IsNull()) {
    writer->WriteU32(term.id());
  } else {
    writer->WriteString(term.ToString());
  }
}

SnapshotStatus DecodeTermByName(BinaryReader* reader, Term* out) {
  uint8_t kind = 0;
  if (!reader->ReadU8(&kind)) {
    return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                "witness term: missing kind");
  }
  switch (static_cast<Term::Kind>(kind)) {
    case Term::Kind::kNull: {
      uint32_t id = 0;
      if (!reader->ReadU32(&id) || id > Term::kMaxId) {
        return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                    "witness term: bad null id");
      }
      *out = Term::Null(id);
      return SnapshotStatus::Ok();
    }
    case Term::Kind::kConstant:
    case Term::Kind::kVariable: {
      std::string name;
      if (!reader->ReadString(&name) || name.empty()) {
        return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                    "witness term: bad name");
      }
      *out = kind == static_cast<uint8_t>(Term::Kind::kConstant)
                 ? Term::Constant(name)
                 : Term::Variable(name);
      return SnapshotStatus::Ok();
    }
    default:
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "witness term: unknown kind");
  }
}

namespace {

void EncodeTermVector(const std::vector<Term>& terms, BinaryWriter* writer) {
  writer->WriteU64(terms.size());
  for (Term t : terms) EncodeTermByName(t, writer);
}

SnapshotStatus DecodeTermVector(BinaryReader* reader,
                                std::vector<Term>* out) {
  uint64_t count = 0;
  if (!reader->ReadU64(&count) || count > reader->remaining()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "witness: impossible term count");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Term t;
    SnapshotStatus status = DecodeTermByName(reader, &t);
    if (!status.ok()) return status;
    out->push_back(t);
  }
  return SnapshotStatus::Ok();
}

void EncodeHomWitness(const HomWitness& hom, BinaryWriter* writer) {
  writer->WriteString(hom.query);
  writer->WriteU32(hom.disjunct);
  EncodeTermVector(hom.answer, writer);
  writer->WriteU64(hom.assignment.size());
  for (const auto& [from, to] : hom.assignment) {
    EncodeTermByName(from, writer);
    EncodeTermByName(to, writer);
  }
}

SnapshotStatus DecodeHomWitness(BinaryReader* reader, HomWitness* out) {
  if (!reader->ReadString(&out->query) || !reader->ReadU32(&out->disjunct)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "witness: bad hom header");
  }
  SnapshotStatus status = DecodeTermVector(reader, &out->answer);
  if (!status.ok()) return status;
  uint64_t pairs = 0;
  if (!reader->ReadU64(&pairs) || pairs > reader->remaining()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "witness: impossible assignment count");
  }
  out->assignment.clear();
  out->assignment.reserve(pairs);
  for (uint64_t i = 0; i < pairs; ++i) {
    Term from, to;
    status = DecodeTermByName(reader, &from);
    if (!status.ok()) return status;
    status = DecodeTermByName(reader, &to);
    if (!status.ok()) return status;
    out->assignment.emplace_back(from, to);
  }
  return SnapshotStatus::Ok();
}

void EncodeDerivation(const DerivationWitness& derivation,
                      BinaryWriter* writer) {
  writer->WriteBool(derivation.collected);
  writer->WriteBool(derivation.complete);
  writer->WriteBool(derivation.replay_exact);
  writer->WriteU64(derivation.final_facts);
  writer->WriteU32(derivation.instance_crc);
  writer->WriteU64(derivation.steps.size());
  for (const DerivationStep& step : derivation.steps) {
    writer->WriteU32(step.tgd_index);
    EncodeTermVector(step.body_images, writer);
    EncodeTermVector(step.existential_images, writer);
  }
}

SnapshotStatus DecodeDerivation(BinaryReader* reader,
                                DerivationWitness* out) {
  uint64_t steps = 0;
  if (!reader->ReadBool(&out->collected) || !reader->ReadBool(&out->complete) ||
      !reader->ReadBool(&out->replay_exact) ||
      !reader->ReadU64(&out->final_facts) ||
      !reader->ReadU32(&out->instance_crc) || !reader->ReadU64(&steps) ||
      steps > reader->remaining()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "witness: bad derivation header");
  }
  out->steps.clear();
  out->steps.reserve(steps);
  for (uint64_t i = 0; i < steps; ++i) {
    DerivationStep step;
    if (!reader->ReadU32(&step.tgd_index)) {
      return SnapshotStatus::Fail(SnapshotError::kTruncated,
                                  "witness: truncated derivation step");
    }
    SnapshotStatus status = DecodeTermVector(reader, &step.body_images);
    if (!status.ok()) return status;
    status = DecodeTermVector(reader, &step.existential_images);
    if (!status.ok()) return status;
    out->steps.push_back(std::move(step));
  }
  return SnapshotStatus::Ok();
}

}  // namespace

void EncodeEvalWitness(const EvalWitness& witness, BinaryWriter* writer) {
  writer->WriteU8(static_cast<uint8_t>(witness.kind));
  writer->WriteString(witness.method);
  writer->WriteBool(witness.certified);
  EncodeDerivation(witness.derivation, writer);
  writer->WriteU64(witness.answers.size());
  for (const HomWitness& hom : witness.answers) EncodeHomWitness(hom, writer);
}

SnapshotStatus DecodeEvalWitness(BinaryReader* reader, EvalWitness* out) {
  uint8_t kind = 0;
  if (!reader->ReadU8(&kind) ||
      kind > static_cast<uint8_t>(EvalWitness::Kind::kChaseAndAnswers)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "witness: bad kind");
  }
  out->kind = static_cast<EvalWitness::Kind>(kind);
  if (!reader->ReadString(&out->method) || !reader->ReadBool(&out->certified)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "witness: bad header");
  }
  SnapshotStatus status = DecodeDerivation(reader, &out->derivation);
  if (!status.ok()) return status;
  uint64_t answers = 0;
  if (!reader->ReadU64(&answers) || answers > reader->remaining()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "witness: impossible answer count");
  }
  out->answers.clear();
  out->answers.reserve(answers);
  for (uint64_t i = 0; i < answers; ++i) {
    HomWitness hom;
    status = DecodeHomWitness(reader, &hom);
    if (!status.ok()) return status;
    out->answers.push_back(std::move(hom));
  }
  return status;
}

std::string EncodeEvalWitnessToString(const EvalWitness& witness) {
  BinaryWriter writer;
  EncodeEvalWitness(witness, &writer);
  return writer.Take();
}

SnapshotStatus DecodeEvalWitnessFromString(std::string_view bytes,
                                           EvalWitness* out) {
  BinaryReader reader(bytes);
  SnapshotStatus status = DecodeEvalWitness(&reader, out);
  if (!status.ok()) return status;
  if (!reader.ok() || !reader.AtEnd()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "witness: trailing bytes");
  }
  return SnapshotStatus::Ok();
}

}  // namespace gqe
