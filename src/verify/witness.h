#ifndef GQE_VERIFY_WITNESS_H_
#define GQE_VERIFY_WITNESS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/instance.h"
#include "base/serialize.h"
#include "base/term.h"
#include "query/cq.h"

namespace gqe {

/// Machine-checkable certificates. Every engine's claimed answer carries
/// a small witness object — a homomorphism, a chase derivation, a join
/// tree, a rewriting provenance — that an *independent*, deliberately
/// dumb checker (verify/verifier.h) can re-check against nothing but the
/// input database, the TGD set and the query. The witness types below
/// are plain data: no engine code is trusted during verification.

/// One chase step: TGD `tgd_index` fired on the guard match that sends
/// Tgd::BodyVariables() (in order) to `body_images`, inventing the
/// labelled nulls `existential_images` for Tgd::ExistentialVariables()
/// (in order). The produced head facts are *not* stored — the checker
/// recomputes them by applying the extended substitution, so a tampered
/// log cannot smuggle in facts the rule does not derive.
struct DerivationStep {
  uint32_t tgd_index = 0;
  std::vector<Term> body_images;
  std::vector<Term> existential_images;

  friend bool operator==(const DerivationStep& a, const DerivationStep& b) {
    return a.tgd_index == b.tgd_index && a.body_images == b.body_images &&
           a.existential_images == b.existential_images;
  }
  friend bool operator!=(const DerivationStep& a, const DerivationStep& b) {
    return !(a == b);
  }
};

/// A replayable chase derivation log: starting from the database and
/// firing `steps` in order reproduces the chase instance. `replay_exact`
/// means the log accounts for *every* committed fact (a budget-tripped
/// chase keeps a committed prefix whose final partial step is not
/// attributable to a full trigger, so it clears the flag); when set, the
/// checker additionally matches `final_facts` and `instance_crc` (the
/// interner-independent InstanceTextCrc) against the replayed instance.
struct DerivationWitness {
  bool collected = false;
  bool complete = false;
  bool replay_exact = true;
  std::vector<DerivationStep> steps;
  uint64_t final_facts = 0;
  uint32_t instance_crc = 0;

  friend bool operator==(const DerivationWitness& a,
                         const DerivationWitness& b) {
    return a.collected == b.collected && a.complete == b.complete &&
           a.replay_exact == b.replay_exact && a.steps == b.steps &&
           a.final_facts == b.final_facts && a.instance_crc == b.instance_crc;
  }
  friend bool operator!=(const DerivationWitness& a,
                         const DerivationWitness& b) {
    return !(a == b);
  }
};

/// CRC-32 over the sorted `fact.ToString()` lines of an instance: a
/// digest that is independent of interner history and insertion order,
/// so a verifier in another process can match it.
uint32_t InstanceTextCrc(const Instance& instance);

/// A homomorphism certificate for one answer tuple of a (U)CQ: disjunct
/// index, the answer tuple, and the full variable assignment (every
/// variable of the disjunct, in CQ::AllVariables() order, to a ground
/// term). Checked atom-by-atom against the instance.
struct HomWitness {
  std::string query;  // query name; empty for anonymous evaluation
  uint32_t disjunct = 0;
  std::vector<Term> answer;
  std::vector<std::pair<Term, Term>> assignment;

  friend bool operator==(const HomWitness& a, const HomWitness& b) {
    return a.query == b.query && a.disjunct == b.disjunct &&
           a.answer == b.answer && a.assignment == b.assignment;
  }
  friend bool operator!=(const HomWitness& a, const HomWitness& b) {
    return !(a == b);
  }
};

/// A join-tree certificate for a GYO / Yannakakis run: `parent[i]` is the
/// parent atom index of query atom i (-1 for a root) and `order` is the
/// leaves-first processing order. Valid iff `order` is a permutation
/// listing children before parents and every query variable induces a
/// connected subtree (the running-intersection property).
struct JoinTreeWitness {
  std::vector<int32_t> parent;
  std::vector<int32_t> order;
};

/// Provenance for an answer obtained through a linear-TGD UCQ rewriting:
/// which rewritten CQ fired (`rewritten`, at `disjunct` in the produced
/// rewriting), its homomorphism into the *database*, and the rewriting
/// round bound `chase_depth` at which the checker replays the original
/// query over the chased image.
struct RewriteWitness {
  std::string query;
  uint32_t disjunct = 0;
  CQ rewritten;
  uint32_t chase_depth = 0;
  HomWitness hom;
};

/// The witness a serve worker ships with its result. `kind` says which
/// sections are populated; `certified` is the *generator's* claim that
/// the sections cover the whole result (e.g. the guarded-portion engine
/// clears it when its certification chase hit its local cap). The
/// supervisor never trusts either field: it re-checks everything present
/// and downgrades what it cannot check.
struct EvalWitness {
  enum class Kind : uint8_t {
    kNone = 0,
    kDerivation = 1,      // chase request: derivation log only
    kAnswers = 2,         // query request: one HomWitness per answer
    kChaseAndAnswers = 3  // OMQ: derivation + answers over the chase
  };

  Kind kind = Kind::kNone;
  std::string method;
  bool certified = false;
  DerivationWitness derivation;
  std::vector<HomWitness> answers;

  bool empty() const { return kind == Kind::kNone; }
};

/// Witness knobs threaded through every engine (ISSUE 5 tentpole).
struct WitnessOptions {
  bool collect = false;
  /// Local budget for certification chases (guarded-portion answers are
  /// certified by a separate bounded chase; this caps its size so
  /// certification can never change the request's own budget accounting).
  size_t certify_max_facts = 100000;
  int certify_max_level = 32;
};

/// Interner-independent wire codec: terms travel by *name* (u8 kind +
/// interned name for constants/variables, u32 id for nulls) so a witness
/// decoded in a different process re-interns to equal terms.
void EncodeTermByName(Term term, BinaryWriter* writer);
SnapshotStatus DecodeTermByName(BinaryReader* reader, Term* out);

void EncodeEvalWitness(const EvalWitness& witness, BinaryWriter* writer);
SnapshotStatus DecodeEvalWitness(BinaryReader* reader, EvalWitness* out);

/// Whole-buffer helpers used by the serve result pipe.
std::string EncodeEvalWitnessToString(const EvalWitness& witness);
SnapshotStatus DecodeEvalWitnessFromString(std::string_view bytes,
                                           EvalWitness* out);

}  // namespace gqe

#endif  // GQE_VERIFY_WITNESS_H_
