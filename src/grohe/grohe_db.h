#ifndef GQE_GROHE_GROHE_DB_H_
#define GQE_GROHE_GROHE_DB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/instance.h"
#include "base/term.h"
#include "graph/graph.h"
#include "query/substitution.h"

namespace gqe {

/// A minor map from the k x K grid to the Gaifman graph of a database
/// restricted to A, expressed over terms: blocks[i-1][p-1] is the branch
/// set mu(i, p) (1-based grid coordinates, K = C(k,2)). Branch sets are
/// pairwise disjoint; their union is the set A.
using GridMinorTermMap = std::vector<std::vector<std::vector<Term>>>;

/// All elements of A (the union of the branch sets).
std::vector<Term> MinorMapUnion(const GridMinorTermMap& mu);

/// The p-th 2-element subset of [k] under the fixed bijection rho
/// (lexicographic pairs, 1-based p in [C(k,2)]).
std::pair<int, int> RhoPair(int k, int p);

/// Output of the Theorem 6.1 construction.
struct GroheDatabase {
  Instance dg;

  /// The surjective homomorphism h0 from D_G to D (Point 1): maps every
  /// element of dom(dg) to an element of dom(D); identity on
  /// dom(D) \ A.
  Substitution h0;

  /// Validates Point 1 (h0 is a homomorphism onto D). Point 2 is checked
  /// end-to-end by callers (clique iff query satisfaction).
  bool ValidateProjection(const Instance& d, std::string* why = nullptr) const;
};

/// Builds D_G per Theorem 6.1 / Appendix D: domain
/// (dom(D)\A) ∪ {(v,e,i,p,a) | v∈e ⟺ i∈rho(p), a ∈ mu(i,p)}, and an atom
/// R(b̄) for every R(h0(b̄)) ∈ D satisfying (C1) equal i ⟹ equal v and
/// (C2) equal p ⟹ equal e.
GroheDatabase BuildGroheDatabase(const Graph& g, int k, const Instance& d,
                                 const GridMinorTermMap& mu);

}  // namespace gqe

#endif  // GQE_GROHE_GROHE_DB_H_
