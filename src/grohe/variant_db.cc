#include "grohe/variant_db.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace gqe {

namespace {

struct Block {
  int i = 0;
  int j = 0;  // the pair {j, l} with j < l
  int l = 0;
};

/// Encodes (v, e, i, {j,l}, z) as a constant.
Term ElementTerm(int v, std::pair<int, int> e, const Block& block, Term z) {
  return Term::Constant("#s_v" + std::to_string(v) + "_e" +
                        std::to_string(e.first) + "-" +
                        std::to_string(e.second) + "_i" +
                        std::to_string(block.i) + "_p" +
                        std::to_string(block.j) + "-" +
                        std::to_string(block.l) + "_" + z.ToString());
}

}  // namespace

bool VariantDatabase::ValidateProjection(const Instance& d_prime,
                                         std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  std::unordered_set<Term> image;
  for (const Atom& atom : dstar.atoms()) {
    std::vector<Term> mapped;
    for (Term t : atom.args()) {
      mapped.push_back(h0.Apply(t));
      image.insert(mapped.back());
    }
    if (!d_prime.Contains(Atom(atom.predicate(), mapped))) {
      return fail("h0 image of " + atom.ToString() + " not in D'");
    }
  }
  for (Term t : d_prime.ActiveDomain()) {
    if (image.count(t) == 0) {
      return fail("h0 not surjective: " + t.ToString() + " unreached");
    }
  }
  return true;
}

VariantDatabase BuildVariantDatabase(const Graph& g, int k,
                                     const Instance& d_prime,
                                     const GridMinorTermMap& mu) {
  VariantDatabase out;
  // chi maps 2-subsets of [k] to column indices: reuse RhoPair's
  // bijection (chi({j,l}) = p iff RhoPair(k, p) == (j,l)).
  std::unordered_map<Term, Block> block_of;
  for (int i = 1; i <= static_cast<int>(mu.size()); ++i) {
    for (int p = 1; p <= static_cast<int>(mu[i - 1].size()); ++p) {
      auto [j, l] = RhoPair(k, p);
      for (Term z : mu[i - 1][p - 1]) {
        block_of[z] = Block{i, j, l};
      }
    }
  }

  for (const Atom& fact : d_prime.atoms()) {
    // Indices of [k] that a covering labelled clique must assign.
    std::vector<int> needed;
    std::vector<int> a_positions;
    for (int pos = 0; pos < fact.arity(); ++pos) {
      auto it = block_of.find(fact.args()[pos]);
      if (it == block_of.end()) continue;
      a_positions.push_back(pos);
      for (int index : {it->second.i, it->second.j, it->second.l}) {
        if (std::find(needed.begin(), needed.end(), index) == needed.end()) {
          needed.push_back(index);
        }
      }
    }
    if (a_positions.empty()) {
      out.dstar.Insert(fact);
      continue;
    }
    std::sort(needed.begin(), needed.end());
    // Enumerate labelled cliques eta on exactly the needed indices:
    // assignments of pairwise-adjacent vertices.
    std::unordered_map<int, int> eta;
    std::function<void(size_t)> assign = [&](size_t index) {
      if (index == needed.size()) {
        std::vector<Term> args(fact.args());
        for (int pos : a_positions) {
          const Term z = fact.args()[pos];
          const Block& block = block_of.at(z);
          const int v = eta.at(block.i);
          int e1 = eta.at(block.j);
          int e2 = eta.at(block.l);
          if (e1 > e2) std::swap(e1, e2);
          args[pos] = ElementTerm(v, {e1, e2}, block, z);
        }
        Atom atom(fact.predicate(), args);
        if (out.dstar.Insert(atom)) {
          for (int pos : a_positions) {
            out.h0.Set(atom.args()[pos], fact.args()[pos]);
          }
        }
        return;
      }
      const int idx = needed[index];
      for (int v = 0; v < g.num_vertices(); ++v) {
        bool adjacent_to_all = true;
        for (size_t prev = 0; prev < index; ++prev) {
          if (!g.HasEdge(eta.at(needed[prev]), v)) {
            adjacent_to_all = false;
            break;
          }
        }
        if (!adjacent_to_all) continue;
        eta[idx] = v;
        assign(index + 1);
        eta.erase(idx);
      }
    };
    assign(0);
  }
  // Identity on dom(D') \ A.
  for (Term t : d_prime.ActiveDomain()) {
    if (block_of.count(t) == 0) out.h0.Set(t, t);
  }
  return out;
}

}  // namespace gqe
