#include "grohe/clique.h"

#include <algorithm>
#include <functional>

namespace gqe {

std::optional<std::vector<int>> FindClique(const Graph& g, int k) {
  if (k <= 0) return std::vector<int>{};
  const int n = g.num_vertices();
  std::vector<int> current;
  std::optional<std::vector<int>> result;
  std::function<bool(int)> extend = [&](int start) -> bool {
    if (static_cast<int>(current.size()) == k) {
      result = current;
      return true;
    }
    for (int v = start; v < n; ++v) {
      if (g.Degree(v) < k - 1) continue;
      bool adjacent_to_all = true;
      for (int u : current) {
        if (!g.HasEdge(u, v)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (!adjacent_to_all) continue;
      current.push_back(v);
      if (extend(v + 1)) return true;
      current.pop_back();
    }
    return false;
  };
  extend(0);
  return result;
}

bool HasClique(const Graph& g, int k) { return FindClique(g, k).has_value(); }

Graph BlowUpGraph(const Graph& g, int c) {
  Graph blown(g.num_vertices() * c);
  auto copy_id = [c](int v, int i) { return v * c + i; };
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int i = 0; i < c; ++i) {
      for (int j = i + 1; j < c; ++j) {
        blown.AddEdge(copy_id(v, i), copy_id(v, j));
      }
    }
  }
  for (auto [u, v] : g.Edges()) {
    for (int i = 0; i < c; ++i) {
      for (int j = 0; j < c; ++j) {
        blown.AddEdge(copy_id(u, i), copy_id(v, j));
      }
    }
  }
  return blown;
}

}  // namespace gqe
