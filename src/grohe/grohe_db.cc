#include "grohe/grohe_db.h"

#include <cassert>
#include <functional>
#include <unordered_set>

namespace gqe {

std::vector<Term> MinorMapUnion(const GridMinorTermMap& mu) {
  std::vector<Term> all;
  for (const auto& row : mu) {
    for (const auto& block : row) {
      all.insert(all.end(), block.begin(), block.end());
    }
  }
  return all;
}

std::pair<int, int> RhoPair(int k, int p) {
  int index = 0;
  for (int j = 1; j <= k; ++j) {
    for (int l = j + 1; l <= k; ++l) {
      ++index;
      if (index == p) return {j, l};
    }
  }
  assert(false && "p out of range");
  return {0, 0};
}

namespace {

/// Encodes the Theorem 6.1 domain element (v, e, i, p, a) as a constant.
Term ElementTerm(int v, std::pair<int, int> e, int i, int p, Term a) {
  return Term::Constant("#g_v" + std::to_string(v) + "_e" +
                        std::to_string(e.first) + "-" +
                        std::to_string(e.second) + "_i" + std::to_string(i) +
                        "_p" + std::to_string(p) + "_" + a.ToString());
}

struct Block {
  int i = 0;
  int p = 0;
};

}  // namespace

bool GroheDatabase::ValidateProjection(const Instance& d,
                                       std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  std::unordered_set<Term> image;
  for (const Atom& atom : dg.atoms()) {
    std::vector<Term> mapped;
    for (Term t : atom.args()) {
      mapped.push_back(h0.Apply(t));
      image.insert(mapped.back());
    }
    if (!d.Contains(Atom(atom.predicate(), mapped))) {
      return fail("h0 image of " + atom.ToString() + " not in D");
    }
  }
  for (Term t : d.ActiveDomain()) {
    if (image.count(t) == 0) {
      return fail("h0 not surjective: " + t.ToString() + " unreached");
    }
  }
  return true;
}

GroheDatabase BuildGroheDatabase(const Graph& g, int k, const Instance& d,
                                 const GridMinorTermMap& mu) {
  GroheDatabase out;
  // Block lookup: element of A -> (i, p).
  std::unordered_map<Term, Block> block_of;
  for (int i = 1; i <= static_cast<int>(mu.size()); ++i) {
    for (int p = 1; p <= static_cast<int>(mu[i - 1].size()); ++p) {
      for (Term a : mu[i - 1][p - 1]) {
        block_of[a] = Block{i, p};
      }
    }
  }
  const std::vector<std::pair<int, int>> edges = g.Edges();

  // For every fact, enumerate the admissible replacement tuples by
  // backtracking over its A-positions, maintaining the (C1) choice of v
  // per grid row i and the (C2) choice of e per grid column p.
  for (const Atom& fact : d.atoms()) {
    std::vector<int> a_positions;
    for (int pos = 0; pos < fact.arity(); ++pos) {
      if (block_of.count(fact.args()[pos]) > 0) a_positions.push_back(pos);
    }
    std::vector<Term> args(fact.args());
    std::unordered_map<int, int> v_of_i;   // row -> chosen vertex
    std::unordered_map<int, int> e_of_p;   // column -> chosen edge index
    std::function<void(size_t)> assign = [&](size_t index) {
      if (index == a_positions.size()) {
        Atom atom(fact.predicate(), args);
        if (out.dg.Insert(atom)) {
          for (int pos : a_positions) {
            out.h0.Set(args[pos], fact.args()[pos]);
          }
        }
        return;
      }
      const int pos = a_positions[index];
      const Term a = fact.args()[pos];
      const Block block = block_of.at(a);
      auto [j, l] = RhoPair(k, block.p);
      const bool i_in_p = (block.i == j || block.i == l);
      // Candidate vertices for row i and edges for column p, honoring
      // prior choices.
      std::vector<int> vertex_choices;
      if (auto it = v_of_i.find(block.i); it != v_of_i.end()) {
        vertex_choices.push_back(it->second);
      } else {
        for (int v = 0; v < g.num_vertices(); ++v) vertex_choices.push_back(v);
      }
      std::vector<int> edge_choices;
      if (auto it = e_of_p.find(block.p); it != e_of_p.end()) {
        edge_choices.push_back(it->second);
      } else {
        for (int e = 0; e < static_cast<int>(edges.size()); ++e) {
          edge_choices.push_back(e);
        }
      }
      for (int v : vertex_choices) {
        for (int e : edge_choices) {
          const bool v_in_e = (edges[e].first == v || edges[e].second == v);
          if (v_in_e != i_in_p) continue;  // the (v ∈ e ⟺ i ∈ p) condition
          const bool new_v = v_of_i.count(block.i) == 0;
          const bool new_e = e_of_p.count(block.p) == 0;
          if (new_v) v_of_i[block.i] = v;
          if (new_e) e_of_p[block.p] = e;
          args[pos] = ElementTerm(v, edges[e], block.i, block.p, a);
          assign(index + 1);
          if (new_v) v_of_i.erase(block.i);
          if (new_e) e_of_p.erase(block.p);
        }
      }
      args[pos] = a;
    };
    assign(0);
  }
  // Identity on dom(D) \ A.
  for (Term t : d.ActiveDomain()) {
    if (block_of.count(t) == 0) out.h0.Set(t, t);
  }
  return out;
}

}  // namespace gqe
