#ifndef GQE_GROHE_VARIANT_DB_H_
#define GQE_GROHE_VARIANT_DB_H_

#include <string>

#include "base/instance.h"
#include "grohe/grohe_db.h"
#include "graph/graph.h"
#include "query/substitution.h"

namespace gqe {

/// Output of the Theorem 7.1 / Appendix H.1 construction
/// D* = D*(G, D, D', A, mu) — the paper's constraint-compatible variant
/// of Grohe's database, built from *labelled cliques* of G.
struct VariantDatabase {
  Instance dstar;

  /// The projection h0: dom(D*) -> dom(D') (Lemma H.2 (2)).
  Substitution h0;

  bool ValidateProjection(const Instance& d_prime,
                          std::string* why = nullptr) const;
};

/// Builds D*: every fact R(z̄) ∈ D' contributes R(z̄_eta) for every
/// labelled clique eta of G covering the elements of z̄, where an element
/// z ∈ mu(i, chi({j,l})) is replaced by (eta(i), {eta(j),eta(l)}, i,
/// {j,l}, z). Elements outside A are kept. Lemma H.2: (2) h0 is a
/// surjective homomorphism onto D'; (3) G has a k-clique iff some
/// homomorphism h: D -> D* has h0∘h = id on A; (4) if D' |= Σ for
/// frontier-guarded Σ and cliques of G extend as required, then D* |= Σ.
VariantDatabase BuildVariantDatabase(const Graph& g, int k,
                                     const Instance& d_prime,
                                     const GridMinorTermMap& mu);

}  // namespace gqe

#endif  // GQE_GROHE_VARIANT_DB_H_
