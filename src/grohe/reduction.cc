#include "grohe/reduction.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "chase/chase.h"
#include "graph/minor.h"
#include "query/evaluation.h"

namespace gqe {

namespace {

Term GridVarTerm(const std::string& prefix, int i, int j) {
  return Term::Variable(prefix + "_" + std::to_string(i) + "_" +
                        std::to_string(j));
}

}  // namespace

CliqueReduction MakeGridCliqueReduction(int k, int rows, int cols,
                                        const std::string& h_rel,
                                        const std::string& v_rel,
                                        const TgdSet& sigma) {
  const int kk = k * (k - 1) / 2;
  if (rows < k || cols < kk) {
    std::fprintf(stderr,
                 "MakeGridCliqueReduction: need rows >= k and cols >= C(k,2)"
                 " (got %dx%d for k=%d)\n",
                 rows, cols, k);
    std::abort();
  }
  CliqueReduction reduction;
  reduction.k = k;
  reduction.sigma = sigma;

  const std::string prefix = "x" + h_rel;  // variable namespace per relation
  std::vector<Atom> atoms;
  for (int i = 1; i <= rows; ++i) {
    for (int j = 1; j <= cols; ++j) {
      if (j + 1 <= cols) {
        atoms.push_back(Atom::Make(
            h_rel, {GridVarTerm(prefix, i, j), GridVarTerm(prefix, i, j + 1)}));
      }
      if (i + 1 <= rows) {
        atoms.push_back(Atom::Make(
            v_rel, {GridVarTerm(prefix, i, j), GridVarTerm(prefix, i + 1, j)}));
      }
    }
  }
  reduction.query = CQ({}, std::move(atoms));
  reduction.d = reduction.query.CanonicalInstance();

  if (sigma.empty()) {
    reduction.d_prime = reduction.d;
  } else {
    ChaseResult chased = Chase(reduction.d, sigma);
    if (!chased.complete) {
      std::fprintf(stderr,
                   "MakeGridCliqueReduction: sigma's chase did not "
                   "terminate\n");
      std::abort();
    }
    reduction.d_prime = chased.instance;
  }

  // Band minor map from the k x C(k,2) grid onto the query grid, over the
  // frozen canonical-database terms.
  MinorMap band = GridOntoGridMinorMap(k, kk, rows, cols);
  reduction.mu.assign(k, std::vector<std::vector<Term>>(kk));
  for (int i = 1; i <= k; ++i) {
    for (int p = 1; p <= kk; ++p) {
      for (int grid_vertex : band.BranchSet(Graph::GridVertex(k, kk, i, p))) {
        const int r = grid_vertex / cols + 1;
        const int c = grid_vertex % cols + 1;
        reduction.mu[i - 1][p - 1].push_back(
            CQ::FrozenConstant(GridVarTerm(prefix, r, c)));
      }
    }
  }
  return reduction;
}

ReductionOutcome RunVariantReduction(const Graph& g, const CliqueReduction& r,
                                     bool check_sigma) {
  VariantDatabase variant = BuildVariantDatabase(g, r.k, r.d_prime, r.mu);
  ReductionOutcome outcome;
  outcome.dstar = std::move(variant.dstar);
  outcome.dstar_atoms = outcome.dstar.size();
  outcome.dstar_domain = outcome.dstar.ActiveDomain().size();
  if (check_sigma && !r.sigma.empty()) {
    outcome.satisfies_sigma = Satisfies(outcome.dstar, r.sigma);
  }
  outcome.query_holds = HoldsBooleanCQ(r.query, outcome.dstar);
  return outcome;
}

ReductionOutcome RunGroheReduction(const Graph& g, const CliqueReduction& r) {
  GroheDatabase grohe = BuildGroheDatabase(g, r.k, r.d, r.mu);
  ReductionOutcome outcome;
  outcome.dstar = std::move(grohe.dg);
  outcome.dstar_atoms = outcome.dstar.size();
  outcome.dstar_domain = outcome.dstar.ActiveDomain().size();
  outcome.query_holds = HoldsBooleanCQ(r.query, outcome.dstar);
  return outcome;
}

}  // namespace gqe
