#ifndef GQE_GROHE_REDUCTION_H_
#define GQE_GROHE_REDUCTION_H_

#include <string>

#include "base/instance.h"
#include "grohe/grohe_db.h"
#include "grohe/variant_db.h"
#include "graph/graph.h"
#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// A prepared instance of the p-Clique fpt-reduction of Sections 6/7:
/// a Boolean connected grid CQ playing the role of the Lemma 7.2 query p
/// (grid queries are cores, so X is all of dom(D[p])), optional
/// constraints Σ with D' = chase(D[p], Σ) finite, and the onto minor map
/// from the k x K grid.
struct CliqueReduction {
  int k = 0;
  CQ query;              // Boolean rows x cols grid CQ
  TgdSet sigma;          // constraints; empty for the pure Grohe reduction
  Instance d;            // D[p], the canonical database of the query
  Instance d_prime;      // D' ⊇ D with D' |= Σ
  GridMinorTermMap mu;   // mu: k x C(k,2) grid onto Gaifman(D)|A, A = vars
};

/// Builds the Boolean rows x cols grid CQ over binary relations
/// `h_rel`/`v_rel`, its canonical database, the band minor map, and
/// D' = chase(D, sigma) (sigma must have a terminating chase). Requires
/// rows >= k and cols >= C(k,2).
CliqueReduction MakeGridCliqueReduction(int k, int rows, int cols,
                                        const std::string& h_rel,
                                        const std::string& v_rel,
                                        const TgdSet& sigma = {});

/// Outcome of running a reduction on a concrete graph.
struct ReductionOutcome {
  Instance dstar;
  bool query_holds = false;
  bool satisfies_sigma = true;
  size_t dstar_atoms = 0;
  size_t dstar_domain = 0;
};

/// Executes the Appendix H variant reduction (Theorem 7.1 construction):
/// builds D*(G, D, D', A, mu), optionally checks D* |= Σ, and evaluates
/// the query. Theorems 4.1/5.13: query_holds iff G has a k-clique.
ReductionOutcome RunVariantReduction(const Graph& g, const CliqueReduction& r,
                                     bool check_sigma = true);

/// Executes the Theorem 6.1 construction (used for the OMQ-side lower
/// bound, Section 6.1) and evaluates the query.
ReductionOutcome RunGroheReduction(const Graph& g, const CliqueReduction& r);

}  // namespace gqe

#endif  // GQE_GROHE_REDUCTION_H_
