#ifndef GQE_GROHE_CLIQUE_H_
#define GQE_GROHE_CLIQUE_H_

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace gqe {

/// Finds a k-clique in `g` by backtracking with degree pruning (the
/// p-Clique oracle used to verify the fpt-reductions).
std::optional<std::vector<int>> FindClique(const Graph& g, int k);

bool HasClique(const Graph& g, int k);

/// Replaces every vertex by a clique of `c` copies, fully connecting
/// copies of adjacent vertices. G has a k-clique iff the blow-up has a
/// (k*c)-clique, and every clique of size <= s in the blow-up is inside a
/// clique of size >= c — the Section 7 precondition ("every clique of
/// size at most 3r is contained in a clique of size 3rm") holds for
/// c >= 3*r*m.
Graph BlowUpGraph(const Graph& g, int c);

}  // namespace gqe

#endif  // GQE_GROHE_CLIQUE_H_
