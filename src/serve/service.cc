#include "serve/service.h"

#include <signal.h>
#include <stdlib.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <thread>
#include <utility>

#include "base/subprocess.h"
#include "parser/parser.h"
#include "serve/journal.h"
#include "verify/verifier.h"
#include "verify/witness.h"
#include "workload/report.h"

namespace gqe {

namespace {

// Deterministic, order-independent chaos and jitter draws on top of the
// shared Mix64 (base/subprocess.h): every (request id, attempt) pair gets
// its own stream, so concurrent scheduling cannot reorder the randomness.
uint64_t HashId(const std::string& id) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

double UnitDraw(uint64_t* state) {
  *state = Mix64(*state);
  return static_cast<double>(*state >> 11) /
         static_cast<double>(1ull << 53);
}

std::string SanitizeId(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (char c : id) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    out.push_back(keep ? c : '_');
  }
  return out.empty() ? "request" : out;
}

std::string SignalCauseName(int sig) {
  switch (sig) {
    case SIGKILL:
      return "sigkill";
    case SIGSEGV:
      return "sigsegv";
    case SIGBUS:
      return "sigbus";
    case SIGABRT:
      return "sigabrt";
    case SIGXCPU:
      return "cpu-limit";
    case SIGTERM:
      return "sigterm";
    default:
      return "signal:" + std::to_string(sig);
  }
}

bool PermanentExitCode(int code) {
  return code == kWorkerExitParseError || code == kWorkerExitBadRequest;
}

struct Job {
  EvalRequest request;
  uint64_t ticket = 0;
  bool done = false;
  bool running = false;
  bool degraded_phase = false;
  int exact_attempts = 0;     // exact attempts finished
  int degraded_attempts = 0;  // degraded attempts finished
  int attempt_number = 0;     // 1-based across both phases
  double ready_at = 0.0;
  double next_backoff_ms = 0.0;
  /// FormatRequestLine(request), the journal's idempotency key — cached
  /// so duplicate-id probes don't re-format on every frame.
  std::string canonical_line;
  RequestRow row;
};

struct Inflight {
  WorkerProcess proc;
  uint64_t ticket = 0;
  double started_at = 0.0;
  double last_beat = 0.0;
  AttemptRecord record;
  std::string kill_cause;  // set when the supervisor decided the death
};

}  // namespace

/// The supervisor state machine, shared verbatim by the batch and
/// network front ends. Jobs live in a ticket-ordered map so launches
/// keep submission order (the old manifest order) while finished jobs
/// can be erased as soon as they are harvested.
class ServeEngine::Impl {
 public:
  explicit Impl(const ServeOptions& options) : options_(options) {
    SetUpWorkDir();
    OpenJournal();
  }

  ~Impl() {
    // WorkerProcess dtors kill and reap any child still running — the
    // engine never leaks a worker, even torn down mid-request.
    inflight_.clear();
    jobs_.clear();
    TearDownWorkDir();
  }

  double NowMs() const { return clock_.ElapsedMs(); }

  /// Parses and caches a program for witness re-checking. Parsing must
  /// happen *before* the first fork touching the program: worker
  /// children then inherit an interner with identical ids, so the
  /// supervisor's replayed instances serialize to the same bytes as the
  /// workers' and the digest cross-checks in CheckWitness are exact.
  void PreloadProgram(const std::string& path) {
    if (!options_.verify || programs_.count(path) > 0) return;
    std::string text;
    if (!ReadFileBytes(path, &text).ok()) return;
    ParseResult parsed = ParseProgram(text);
    if (parsed.ok) programs_.emplace(path, std::move(parsed.program));
  }

  uint64_t Submit(const EvalRequest& request) {
    const uint64_t ticket = SubmitJob(request, /*journal_admission=*/true);
    return ticket;
  }

  ServeEngine::CacheLookup LookupCompleted(const EvalRequest& request,
                                           RequestRow* row) {
    if (!journaling_) return ServeEngine::CacheLookup::kMiss;
    auto it = cache_.find(request.id);
    if (it == cache_.end()) return ServeEngine::CacheLookup::kMiss;
    Cached& cached = it->second;
    if (cached.request_line != FormatRequestLine(request)) {
      return ServeEngine::CacheLookup::kMismatch;
    }
    const bool has_answer = cached.state == TerminalState::kCompleted ||
                            cached.state == TerminalState::kDegraded;
    if (options_.verify && has_answer && !cached.verify_checked) {
      // Re-check the *persisted* witness before ever serving a journaled
      // answer: a corrupted or tampered cache entry is recomputed, not
      // replayed.
      PreloadProgram(request.program_path);
      WorkerResult result;
      std::string reason = "cached-result-decode";
      VerifyOutcome outcome = VerifyOutcome::kRejected;
      if (DecodeWorkerResult(cached.worker_result, &result).ok()) {
        outcome = CheckWitness(request, result, &reason);
      }
      if (outcome == VerifyOutcome::kRejected) {
        ++journal_verify_rejections_;
        ++witness_rejections_;
        if (options_.verbose) {
          std::printf("serve: journal reject id=%s witness: %s\n",
                      request.id.c_str(), reason.c_str());
        }
        cache_.erase(it);
        return ServeEngine::CacheLookup::kMiss;
      }
      cached.verify_checked = true;
      cached.verify_outcome = outcome;
      cached.verify_reason = reason;
    }
    row->id = request.id;
    row->kind = request.kind;
    row->state = cached.state;
    row->replayed_line = cached.line;
    row->verify_outcome = cached.verify_outcome;
    row->verify_reason = cached.verify_reason;
    if (!cached.worker_result.empty()) {
      DecodeWorkerResult(cached.worker_result, &row->result);
    }
    ++journal_hits_;
    return ServeEngine::CacheLookup::kHit;
  }

  uint64_t FindInflight(const EvalRequest& request, bool* mismatch) {
    *mismatch = false;
    if (!journaling_) return 0;
    auto it = ticket_by_id_.find(request.id);
    if (it == ticket_by_id_.end()) return 0;
    auto job_it = jobs_.find(it->second);
    if (job_it == jobs_.end()) return 0;
    if (job_it->second.canonical_line != FormatRequestLine(request)) {
      *mismatch = true;
      return 0;
    }
    return it->second;
  }

  void FlushJournal() {
    if (journaling_ && journal_.open()) journal_.Sync();
  }

  ServeEngine::JournalInfo journal_info() const {
    ServeEngine::JournalInfo info;
    info.enabled = journaling_;
    info.failed = journal_.stats().failed;
    info.recovered_completed = recovered_completed_;
    info.recovered_inflight = recovered_inflight_;
    info.torn_bytes = recovered_torn_bytes_;
    info.hits = journal_hits_;
    info.verify_rejections = journal_verify_rejections_;
    return info;
  }

  bool Pump(std::vector<Finished>* finished) {
    const double now = clock_.ElapsedMs();
    LaunchReady(now);
    const bool progressed = PollInflight(now);
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (!it->second.done) {
        ++it;
        continue;
      }
      it->second.row.total_ms = now;
      finished->push_back(Finished{it->first, std::move(it->second.row)});
      it = jobs_.erase(it);
    }
    return progressed;
  }

  bool Idle() const { return jobs_.empty(); }
  size_t ActiveJobs() const { return jobs_.size(); }
  size_t InflightWorkers() const { return inflight_.size(); }
  size_t witness_rejections() const { return witness_rejections_; }

 private:
  void SetUpWorkDir() {
    if (!options_.work_dir.empty()) {
      work_dir_ = options_.work_dir;
      std::error_code ec;
      std::filesystem::create_directories(work_dir_, ec);
      return;
    }
    if (!options_.journal_dir.empty()) {
      // Durable serving: checkpoints must survive the daemon the same
      // way the journal does, or an in-flight request recovered from the
      // journal would restart its evaluation from round 0.
      work_dir_ = options_.journal_dir + "/work";
      std::error_code ec;
      std::filesystem::create_directories(work_dir_, ec);
      return;
    }
    const char* tmpdir = ::getenv("TMPDIR");
    std::string templ = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                        "/gqe-serve-XXXXXX";
    std::vector<char> buffer(templ.begin(), templ.end());
    buffer.push_back('\0');
    if (::mkdtemp(buffer.data()) != nullptr) {
      work_dir_ = buffer.data();
      owns_work_dir_ = true;
    }
    // On mkdtemp failure workers run without checkpoint dirs: retries
    // recompute from scratch — degraded crash recovery, not a crash.
  }

  void TearDownWorkDir() {
    if (owns_work_dir_ && !options_.keep_work_dir && !work_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(work_dir_, ec);
    }
  }

  /// Opens the write-ahead journal and replays it: completed requests
  /// populate the result cache (served without a worker from now on),
  /// unfinished ones are resubmitted with their ladder state restored.
  /// Journal trouble never takes serving down — it latches the journal
  /// into a diagnosed failed state and the daemon runs non-durably.
  void OpenJournal() {
    if (options_.journal_dir.empty()) return;
    JournalOptions jopts;
    jopts.segment_bytes = options_.journal_segment_bytes;
    jopts.fsync_each_record = options_.journal_fsync;
    JournalRecovery recovery;
    const SnapshotStatus status =
        journal_.Open(options_.journal_dir, jopts, &recovery);
    if (!status.ok()) {
      std::fprintf(stderr, "serve: journal disabled: %s\n",
                   status.message.c_str());
      journaling_ = false;
      return;
    }
    journaling_ = true;
    recovered_torn_bytes_ = recovery.torn_bytes;
    for (const JournalEntry& entry : recovery.entries) {
      if (entry.has_result) {
        Cached cached;
        cached.state = entry.state;
        cached.request_line = entry.request_line;
        cached.line = entry.result_line;
        cached.worker_result = entry.worker_result;
        cache_.emplace(entry.id, std::move(cached));
        ++recovered_completed_;
        continue;
      }
      // Admitted but unfinished when the previous daemon died: re-parse
      // the journaled canonical line (program paths were resolved before
      // admission, so no base dir applies) and resubmit without a second
      // ADMITTED record.
      Manifest manifest;
      std::string error;
      if (!ParseManifest(entry.request_line, "", &manifest, &error) ||
          manifest.requests.size() != 1) {
        std::fprintf(stderr,
                     "serve: journal entry id=%s does not re-parse (%s); "
                     "dropped\n",
                     entry.id.c_str(), error.c_str());
        continue;
      }
      const uint64_t ticket =
          SubmitJob(manifest.requests[0], /*journal_admission=*/false);
      Job& job = jobs_.at(ticket);
      job.exact_attempts = entry.exact_attempts;
      job.degraded_attempts = entry.degraded_attempts;
      job.attempt_number = entry.exact_attempts + entry.degraded_attempts;
      job.degraded_phase =
          options_.enable_degraded_ladder && options_.degraded_attempts > 0 &&
          job.exact_attempts >= options_.max_attempts;
      for (const JournalRecord& attempt : entry.attempt_records) {
        AttemptRecord record;
        record.attempt = static_cast<int>(attempt.attempt);
        record.degraded = attempt.degraded;
        record.cause = attempt.cause;
        job.row.attempts.push_back(std::move(record));
      }
      ++recovered_inflight_;
    }
    if (recovery.segments > 2) {
      // Shed rotated-away dead weight (superseded attempts of completed
      // requests) while we hold the full recovered state anyway.
      journal_.Compact(recovery.entries);
    }
    if (options_.verbose &&
        (recovered_completed_ + recovered_inflight_ > 0)) {
      std::printf(
          "serve: journal recovered %zu completed, %zu in-flight "
          "(%zu torn bytes truncated)\n",
          recovered_completed_, recovered_inflight_, recovery.torn_bytes);
    }
  }

  uint64_t SubmitJob(const EvalRequest& request, bool journal_admission) {
    PreloadProgram(request.program_path);
    const uint64_t ticket = next_ticket_++;
    Job& job = jobs_[ticket];
    job.request = request;
    job.ticket = ticket;
    job.row.manifest_index = static_cast<size_t>(ticket);
    job.row.id = request.id;
    job.row.kind = request.kind;
    if (journaling_) {
      job.canonical_line = FormatRequestLine(request);
      ticket_by_id_[request.id] = ticket;
      // Write-ahead: the admission is durable before the first fork, so
      // a daemon death at any later instant leaves a replayable record.
      if (journal_admission) {
        JournalWrite(journal_.AppendAdmitted(request.id, job.canonical_line));
      }
    }
    return ticket;
  }

  /// Journal append error policy: diagnose once, keep serving.
  void JournalWrite(const SnapshotStatus& status) {
    if (status.ok() || journal_warned_) return;
    journal_warned_ = true;
    std::fprintf(stderr, "serve: journal failed (now non-durable): %s\n",
                 status.message.c_str());
  }

  int MaxConcurrency() const {
    return options_.concurrency > 0 ? options_.concurrency : 1;
  }

  /// Draws the fault this attempt self-injects: a manifest fault pinned
  /// to this attempt wins; otherwise chaos rolls its per-(id, attempt)
  /// dice. Degraded attempts and (by default) the final exact attempt
  /// are spared — see ChaosConfig::spare_final_attempt.
  FaultSpec ResolveFault(const Job& job, bool* chaos_injected) {
    *chaos_injected = false;
    FaultSpec fault;
    if (job.degraded_phase) return fault;
    const int upcoming = job.exact_attempts + 1;
    const EvalRequest& request = job.request;
    if (request.fault.active() && request.fault.on_attempt == upcoming) {
      return request.fault;
    }
    const ChaosConfig& chaos = options_.chaos;
    if (!chaos.enabled()) return fault;
    if (chaos.spare_final_attempt && upcoming >= options_.max_attempts) {
      return fault;
    }
    uint64_t state = Mix64(chaos.seed ^ HashId(request.id) ^
                           (static_cast<uint64_t>(upcoming) << 32));
    const double roll = UnitDraw(&state);
    if (roll < chaos.kill_p) {
      fault.type = FaultSpec::Type::kKill;
    } else if (roll < chaos.kill_p + chaos.stall_p) {
      fault.type = FaultSpec::Type::kStall;
    } else if (roll < chaos.kill_p + chaos.stall_p + chaos.oom_p) {
      fault.type = FaultSpec::Type::kOom;
    } else {
      return fault;
    }
    const uint64_t max_ckpt = chaos.max_checkpoint > 0 ? chaos.max_checkpoint
                                                       : 1;
    fault.at_checkpoint =
        1 + (Mix64(state) % max_ckpt);
    *chaos_injected = true;
    return fault;
  }

  ExecutionBudget DegradedBudget(const ExecutionBudget& base) const {
    ExecutionBudget budget = base;
    if (options_.degraded_max_facts > 0 &&
        (budget.max_facts == 0 ||
         budget.max_facts > options_.degraded_max_facts)) {
      budget.max_facts = options_.degraded_max_facts;
    }
    if (options_.degraded_max_nodes > 0 &&
        (budget.max_search_nodes == 0 ||
         budget.max_search_nodes > options_.degraded_max_nodes)) {
      budget.max_search_nodes = options_.degraded_max_nodes;
    }
    if (options_.degraded_deadline_ms > 0 &&
        (budget.deadline_ms == 0 ||
         budget.deadline_ms > options_.degraded_deadline_ms)) {
      budget.deadline_ms = options_.degraded_deadline_ms;
    }
    return budget;
  }

  void LaunchReady(double now) {
    for (auto& [ticket, job] : jobs_) {
      if (static_cast<int>(inflight_.size()) >= MaxConcurrency()) return;
      if (job.done || job.running || job.ready_at > now) continue;
      StartAttempt(job, now);
    }
  }

  void StartAttempt(Job& job, double now) {
    ++job.attempt_number;

    WorkerInvocation invocation;
    invocation.request = job.request;
    invocation.attempt = job.attempt_number;
    invocation.degraded = job.degraded_phase;
    invocation.degraded_fallback_level = options_.degraded_fallback_level;
    invocation.heartbeat_interval_ms = options_.heartbeat_interval_ms;
    invocation.collect_witness = options_.verify;
    if (!work_dir_.empty()) {
      invocation.checkpoint_dir =
          work_dir_ + "/" + SanitizeId(job.request.id);
    }
    if (job.degraded_phase) {
      invocation.request.budget = DegradedBudget(job.request.budget);
    }
    bool chaos_injected = false;
    invocation.fault = ResolveFault(job, &chaos_injected);

    WorkerLimits limits;
    if (invocation.request.budget.deadline_ms > 0) {
      // CPU rlimit backs up the in-process deadline: generous headroom
      // (4x + 1s) so it only fires when the governor failed to.
      limits.cpu_seconds =
          invocation.request.budget.deadline_ms / 1000.0 * 4.0 + 1.0;
    }
    limits.address_space_bytes = invocation.request.address_space_mb << 20;

    Inflight flight;
    flight.ticket = job.ticket;
    flight.started_at = now;
    flight.last_beat = now;
    flight.record.attempt = job.attempt_number;
    flight.record.degraded = job.degraded_phase;
    flight.record.chaos = chaos_injected;
    flight.record.backoff_ms = job.next_backoff_ms;
    job.next_backoff_ms = 0.0;

    std::string error;
    const bool spawned = WorkerProcess::Spawn(
        limits,
        [invocation](int result_fd, int heartbeat_fd) {
          return RunWorkerInProcess(invocation, result_fd, heartbeat_fd);
        },
        &flight.proc, &error);
    if (options_.verbose) {
      std::printf("serve: start id=%s attempt=%d%s%s\n",
                  job.request.id.c_str(), job.attempt_number,
                  job.degraded_phase ? " (degraded)" : "",
                  chaos_injected ? " (chaos)" : "");
    }
    if (!spawned) {
      flight.record.cause = "spawn-error";
      flight.record.ms = 0.0;
      job.row.attempts.push_back(flight.record);
      FinishAttempt(job, flight.record.cause, /*permanent=*/false, nullptr,
                    now);
      return;
    }
    job.running = true;
    inflight_.push_back(std::move(flight));
  }

  bool PollInflight(double now) {
    bool progressed = false;
    for (size_t i = 0; i < inflight_.size();) {
      Inflight& flight = inflight_[i];
      if (flight.proc.DrainHeartbeats() > 0) flight.last_beat = now;
      flight.proc.DrainResult();

      if (flight.proc.Poll()) {
        progressed = true;
        HandleExit(flight, now);
        inflight_[i] = std::move(inflight_.back());
        inflight_.pop_back();
        continue;
      }
      if (flight.kill_cause.empty()) {
        if (options_.heartbeat_timeout_ms > 0 &&
            now - flight.last_beat > options_.heartbeat_timeout_ms) {
          flight.kill_cause = "heartbeat-timeout";
          flight.proc.Kill(SIGKILL);
        } else if (options_.wall_timeout_ms > 0 &&
                   now - flight.started_at > options_.wall_timeout_ms) {
          flight.kill_cause = "wall-timeout";
          flight.proc.Kill(SIGKILL);
        }
      }
      ++i;
    }
    return progressed;
  }

  void HandleExit(Inflight& flight, double now) {
    Job& job = jobs_.at(flight.ticket);
    job.running = false;
    flight.record.ms = now - flight.started_at;

    const WorkerExit& exit = flight.proc.exit_status();
    std::string cause;
    bool permanent = false;
    WorkerResult decoded;
    const WorkerResult* result = nullptr;

    if (exit.exited && exit.exit_code == kWorkerExitOk) {
      const SnapshotStatus status =
          DecodeWorkerResult(flight.proc.result_bytes(), &decoded);
      if (status.ok()) {
        cause = "ok";
        result = &decoded;
        if (options_.verify) {
          std::string reason;
          const VerifyOutcome outcome =
              CheckWitness(job.request, decoded, &reason);
          if (outcome == VerifyOutcome::kRejected) {
            // The certificate failed a check: discard the result and walk
            // the normal retry/degradation ladder.
            cause = "bad-witness";
            result = nullptr;
            ++witness_rejections_;
            if (options_.verbose) {
              std::printf("serve: reject id=%s attempt=%d witness: %s\n",
                          job.request.id.c_str(), flight.record.attempt,
                          reason.c_str());
            }
          } else {
            job.row.verify_outcome = outcome;
            job.row.verify_reason = reason;
          }
        }
      } else {
        cause = "bad-result";
      }
    } else if (exit.exited) {
      cause = WorkerExitCodeName(exit.exit_code);
      if (std::strcmp(cause.c_str(), "exit") == 0) {
        cause = "exit:" + std::to_string(exit.exit_code);
      }
      permanent = PermanentExitCode(exit.exit_code);
    } else if (exit.signaled) {
      cause = !flight.kill_cause.empty() ? flight.kill_cause
                                         : SignalCauseName(exit.term_signal);
    } else {
      cause = "unknown-exit";
    }

    flight.record.cause = cause;
    job.row.attempts.push_back(flight.record);
    if (options_.verbose) {
      std::printf("serve: end id=%s attempt=%d cause=%s (%.1f ms)\n",
                  job.request.id.c_str(), flight.record.attempt,
                  cause.c_str(), flight.record.ms);
    }
    FinishAttempt(job, cause, permanent, result, now);
  }

  /// One finished attempt: journal it, walk the retry/degradation
  /// ladder, and if the request just reached a terminal state journal
  /// the result (the exact line a client will ever see for this id,
  /// written before any client can see it) and prime the result cache.
  void FinishAttempt(Job& job, const std::string& cause, bool permanent,
                     const WorkerResult* result, double now) {
    if (journaling_) {
      JournalWrite(journal_.AppendAttempt(
          job.request.id, static_cast<uint32_t>(job.attempt_number),
          job.degraded_phase, cause));
    }
    FinishAttemptLadder(job, cause, permanent, result, now);
    if (!job.done || !journaling_) return;
    std::string line;
    AppendResultLine(job.row, &line);
    const bool has_answer = job.row.state == TerminalState::kCompleted ||
                            job.row.state == TerminalState::kDegraded;
    const std::string encoded =
        has_answer ? EncodeWorkerResult(job.row.result) : std::string();
    JournalWrite(
        journal_.AppendResult(job.request.id, job.row.state, line, encoded));
    Cached cached;
    cached.state = job.row.state;
    cached.request_line = job.canonical_line;
    cached.line = line;
    cached.worker_result = encoded;
    // This run already verified (or rejected) the live result; don't
    // re-check the same witness on the first duplicate hit.
    cached.verify_checked = options_.verify;
    cached.verify_outcome = job.row.verify_outcome;
    cached.verify_reason = job.row.verify_reason;
    cache_[job.request.id] = std::move(cached);
    ticket_by_id_.erase(job.request.id);
  }

  /// Walks the containment ladder: success -> terminal; retry budget
  /// left -> exponential backoff + jitter; exact budget exhausted ->
  /// degraded phase; everything exhausted -> structured FAILED row.
  void FinishAttemptLadder(Job& job, const std::string& cause, bool permanent,
                           const WorkerResult* result, double now) {
    if (job.degraded_phase) {
      ++job.degraded_attempts;
    } else {
      ++job.exact_attempts;
    }

    if (result != nullptr) {
      job.done = true;
      job.row.state = job.degraded_phase ? TerminalState::kDegraded
                                         : TerminalState::kCompleted;
      job.row.result = *result;
      return;
    }
    if (permanent) {
      job.done = true;
      job.row.state = TerminalState::kFailed;
      job.row.failure_cause = cause;
      return;
    }

    const bool exact_left =
        !job.degraded_phase && job.exact_attempts < options_.max_attempts;
    const bool can_degrade =
        options_.enable_degraded_ladder && options_.degraded_attempts > 0 &&
        (!job.degraded_phase ||
         job.degraded_attempts < options_.degraded_attempts);

    if (!exact_left && !job.degraded_phase) {
      if (!can_degrade) {
        job.done = true;
        job.row.state = TerminalState::kFailed;
        job.row.failure_cause = cause;
        return;
      }
      job.degraded_phase = true;
    } else if (job.degraded_phase &&
               job.degraded_attempts >= options_.degraded_attempts) {
      job.done = true;
      job.row.state = TerminalState::kFailed;
      job.row.failure_cause = cause;
      return;
    }

    // Exponential backoff with deterministic jitter in [0.5, 1.5)
    // (shared with the shard coordinator via base/subprocess.h).
    const int phase_attempts = job.degraded_phase ? job.degraded_attempts
                                                  : job.exact_attempts;
    const double delay = BackoffDelayMs(
        phase_attempts, options_.backoff_base_ms, options_.backoff_cap_ms,
        options_.jitter_seed,
        HashId(job.request.id) ^
            (static_cast<uint64_t>(job.attempt_number) << 40));
    job.ready_at = now + delay;
    job.next_backoff_ms = delay;
    job.row.retry_wait_ms += delay;
  }

  /// Independently re-checks a worker's certificate against the
  /// supervisor's own parse of the program. kRejected means the result
  /// must be discarded (a check failed); kUnverified means the result
  /// stands but no full certificate was available; kVerified means every
  /// check — derivation replay, per-answer homomorphisms, and the digest
  /// cross-check binding the certificate to the reported answers —
  /// passed.
  VerifyOutcome CheckWitness(const EvalRequest& request,
                             const WorkerResult& result,
                             std::string* reason) {
    auto program_it = programs_.find(request.program_path);
    if (program_it == programs_.end()) {
      *reason = "program-unavailable";
      return VerifyOutcome::kUnverified;
    }
    const Program& program = program_it->second;
    if (result.witness.empty()) {
      // Workers in verify mode always attach a witness blob, even an
      // uncollected one; a missing blob is a protocol violation.
      *reason = "no-witness";
      return VerifyOutcome::kRejected;
    }
    EvalWitness witness;
    const SnapshotStatus status =
        DecodeEvalWitnessFromString(result.witness, &witness);
    if (!status.ok()) {
      *reason = "witness-decode: " + status.message;
      return VerifyOutcome::kRejected;
    }

    if (request.kind == RequestKind::kChase) {
      if (witness.kind != EvalWitness::Kind::kDerivation) {
        *reason = "wrong-witness-kind";
        return VerifyOutcome::kRejected;
      }
      if (!witness.derivation.collected) {
        *reason = "derivation-not-collected";
        return VerifyOutcome::kUnverified;
      }
      Instance replayed;
      DerivationCheckOptions check;
      check.check_model = true;
      const VerifyResult replay = VerifyDerivation(
          program.database, program.tgds, witness.derivation, &replayed,
          check);
      if (!replay.ok()) {
        *reason = std::string(VerifyCodeName(replay.code)) + ": " +
                  replay.reason;
        return VerifyOutcome::kRejected;
      }
      if (!witness.derivation.replay_exact) {
        // Budget-hit prefix: the logged steps replayed cleanly but the
        // final instance is not fully covered by the log.
        *reason = "inexact-derivation";
        return VerifyOutcome::kUnverified;
      }
      if (replayed.size() != result.facts) {
        *reason = "replay disagrees with reported fact count";
        return VerifyOutcome::kRejected;
      }
      BinaryWriter writer;
      EncodeInstance(replayed, &writer);
      if (Crc32(writer.buffer()) != result.answer_crc) {
        *reason = "replay disagrees with reported instance digest";
        return VerifyOutcome::kRejected;
      }
      return VerifyOutcome::kVerified;
    }

    // Query kinds: the homomorphisms target either the database itself
    // or an instance the witness's derivation log reconstructs.
    if (witness.kind == EvalWitness::Kind::kNone) {
      *reason = "wrong-witness-kind";
      return VerifyOutcome::kRejected;
    }
    Instance replayed;
    const Instance* target = &program.database;
    if (witness.kind == EvalWitness::Kind::kChaseAndAnswers) {
      if (!witness.derivation.collected) {
        *reason = "derivation-not-collected";
        return VerifyOutcome::kUnverified;
      }
      const VerifyResult replay = VerifyDerivation(
          program.database, program.tgds, witness.derivation, &replayed);
      if (!replay.ok()) {
        *reason = std::string(VerifyCodeName(replay.code)) + ": " +
                  replay.reason;
        return VerifyOutcome::kRejected;
      }
      if (!witness.derivation.replay_exact) {
        *reason = "inexact-derivation";
        return VerifyOutcome::kUnverified;
      }
      target = &replayed;
    }
    if (!witness.certified) {
      // e.g. a guarded certification that hit its deepening cap, or a
      // multi-query request mixing chase-backed engines.
      *reason = "uncertified";
      return VerifyOutcome::kUnverified;
    }
    // Re-check each answer's homomorphism atom-by-atom and rebuild the
    // worker's digest from the certificate alone: matching CRCs bind the
    // emitted result line to independently checked answers.
    std::string digest;
    uint64_t count = 0;
    for (const HomWitness& hom : witness.answers) {
      auto query_it = program.queries.find(hom.query);
      if (query_it == program.queries.end()) {
        *reason = "witness names unknown query '" + hom.query + "'";
        return VerifyOutcome::kRejected;
      }
      const VerifyResult check = VerifyHomomorphism(query_it->second, *target,
                                                    hom);
      if (!check.ok()) {
        *reason = std::string(VerifyCodeName(check.code)) + ": " +
                  check.reason;
        return VerifyOutcome::kRejected;
      }
      digest.append(hom.query);
      digest.push_back('(');
      for (size_t i = 0; i < hom.answer.size(); ++i) {
        if (i > 0) digest.append(", ");
        digest.append(hom.answer[i].ToString());
      }
      digest.append(")\n");
      ++count;
    }
    if (count != result.answer_count) {
      *reason = "witness count disagrees with reported answer count";
      return VerifyOutcome::kRejected;
    }
    if (Crc32(digest) != result.answer_crc) {
      *reason = "witness digest disagrees with reported answer digest";
      return VerifyOutcome::kRejected;
    }
    return VerifyOutcome::kVerified;
  }

  /// One journal-replayable terminal result: everything a duplicate or
  /// resent request id is served from, without a worker.
  struct Cached {
    TerminalState state = TerminalState::kFailed;
    std::string request_line;   // canonical admission line (idempotency key)
    std::string line;           // verbatim recorded "result:" line
    std::string worker_result;  // encoded WorkerResult (carries the witness)
    bool verify_checked = false;
    VerifyOutcome verify_outcome = VerifyOutcome::kNotChecked;
    std::string verify_reason;
  };

  const ServeOptions options_;
  std::map<uint64_t, Job> jobs_;  // ticket order = submission order
  uint64_t next_ticket_ = 1;
  std::vector<Inflight> inflight_;
  Stopwatch clock_;
  std::string work_dir_;
  bool owns_work_dir_ = false;
  std::map<std::string, Program> programs_;
  size_t witness_rejections_ = 0;

  RequestJournal journal_;
  bool journaling_ = false;
  bool journal_warned_ = false;
  std::map<std::string, Cached> cache_;         // id -> recorded result
  std::map<std::string, uint64_t> ticket_by_id_;  // in-flight ids
  size_t recovered_completed_ = 0;
  size_t recovered_inflight_ = 0;
  size_t recovered_torn_bytes_ = 0;
  size_t journal_hits_ = 0;
  size_t journal_verify_rejections_ = 0;
};

ServeEngine::ServeEngine(const ServeOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

ServeEngine::~ServeEngine() = default;

double ServeEngine::NowMs() const { return impl_->NowMs(); }

void ServeEngine::PreloadProgram(const std::string& path) {
  impl_->PreloadProgram(path);
}

uint64_t ServeEngine::Submit(const EvalRequest& request) {
  return impl_->Submit(request);
}

bool ServeEngine::Pump(std::vector<Finished>* finished) {
  return impl_->Pump(finished);
}

bool ServeEngine::Idle() const { return impl_->Idle(); }

size_t ServeEngine::ActiveJobs() const { return impl_->ActiveJobs(); }

size_t ServeEngine::InflightWorkers() const {
  return impl_->InflightWorkers();
}

size_t ServeEngine::witness_rejections() const {
  return impl_->witness_rejections();
}

ServeEngine::CacheLookup ServeEngine::LookupCompleted(
    const EvalRequest& request, RequestRow* row) {
  return impl_->LookupCompleted(request, row);
}

uint64_t ServeEngine::FindInflight(const EvalRequest& request,
                                   bool* mismatch) {
  return impl_->FindInflight(request, mismatch);
}

void ServeEngine::FlushJournal() { impl_->FlushJournal(); }

ServeEngine::JournalInfo ServeEngine::journal_info() const {
  return impl_->journal_info();
}

const char* TerminalStateName(TerminalState state) {
  switch (state) {
    case TerminalState::kCompleted:
      return "completed";
    case TerminalState::kDegraded:
      return "degraded";
    case TerminalState::kFailed:
      return "failed";
    case TerminalState::kShed:
      return "shed";
  }
  return "unknown";
}

bool ParseChaosSpec(std::string_view spec, ChaosConfig* config,
                    std::string* error) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view field = spec.substr(pos, end - pos);
    pos = end + 1;
    if (field.empty()) continue;
    const size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "chaos field '" + std::string(field) + "' is not key=value";
      }
      return false;
    }
    const std::string key(field.substr(0, eq));
    const std::string value(field.substr(eq + 1));
    char* parse_end = nullptr;
    const double p = std::strtod(value.c_str(), &parse_end);
    const bool numeric = parse_end != nullptr && *parse_end == '\0';
    if (key == "kill" && numeric && p >= 0 && p <= 1) {
      config->kill_p = p;
    } else if (key == "oom" && numeric && p >= 0 && p <= 1) {
      config->oom_p = p;
    } else if (key == "stall" && numeric && p >= 0 && p <= 1) {
      config->stall_p = p;
    } else if (key == "seed" && numeric && p >= 0) {
      config->seed = static_cast<uint64_t>(p);
    } else if (key == "ckpt" && numeric && p >= 1) {
      config->max_checkpoint = static_cast<uint64_t>(p);
    } else {
      if (error != nullptr) {
        *error = "bad chaos field '" + std::string(field) +
                 "' (want kill|oom|stall=probability, seed=N or ckpt=N)";
      }
      return false;
    }
  }
  return true;
}

void AppendResultLine(const RequestRow& row, std::string* out) {
  if (!row.replayed_line.empty()) {
    // Journal replay: byte-for-byte the line recorded when the request
    // first completed, possibly in a previous daemon process.
    *out += row.replayed_line;
    return;
  }
  char buffer[256];
  *out += "result: id=" + row.id +
          " kind=" + std::string(RequestKindName(row.kind)) +
          " state=" + TerminalStateName(row.state);
  if (row.state == TerminalState::kFailed ||
      row.state == TerminalState::kShed) {
    *out += " cause=" + row.failure_cause;
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  " status=%s exact=%s method=%s answers=%llu crc=%08x "
                  "facts=%llu rounds=%llu",
                  StatusName(row.result.status),
                  row.result.exact ? "yes" : "no",
                  row.result.method.c_str(),
                  static_cast<unsigned long long>(row.result.answer_count),
                  row.result.answer_crc,
                  static_cast<unsigned long long>(row.result.facts),
                  static_cast<unsigned long long>(
                      row.result.rounds_completed));
    *out += buffer;
    // Fault-invariant by design: a resumed retry restores the witness
    // log from the snapshot, so chaos and fault-free runs of the same
    // manifest verify identically.
    if (row.verify_outcome != VerifyOutcome::kNotChecked) {
      *out += " verified=";
      *out += row.verify_outcome == VerifyOutcome::kVerified ? "yes" : "no";
    }
  }
  *out += '\n';
}

std::string ServeReport::DeterministicText() const {
  std::string out;
  for (const RequestRow& row : rows) AppendResultLine(row, &out);
  return out;
}

void ServeReport::PrintOps(const std::string& title) const {
  // New columns append at the end: the chaos smoke greps this table by
  // column position.
  ReportTable table({"id", "kind", "state", "attempts", "causes",
                     "resumed gen", "rounds", "eval ms", "retry wait ms",
                     "verify"});
  for (const RequestRow& row : rows) {
    std::string causes;
    for (const AttemptRecord& attempt : row.attempts) {
      if (!causes.empty()) causes += ",";
      causes += attempt.cause;
      if (attempt.chaos) causes += "*";
    }
    if (causes.empty()) causes = "-";
    table.AddRow({row.id, RequestKindName(row.kind),
                  TerminalStateName(row.state),
                  ReportTable::Cell(row.attempts.size()), causes,
                  row.result.resumed
                      ? ReportTable::Cell(
                            static_cast<size_t>(row.result.resume_generation))
                      : std::string("-"),
                  ReportTable::Cell(
                      static_cast<size_t>(row.result.rounds_completed)),
                  ReportTable::Cell(row.result.eval_ms),
                  ReportTable::Cell(row.retry_wait_ms),
                  row.verify_outcome == VerifyOutcome::kNotChecked
                      ? std::string("-")
                      : std::string(VerifyOutcomeName(row.verify_outcome))});
  }
  table.Print(title);
  std::printf(
      "serve: %zu completed, %zu degraded, %zu failed, %zu shed "
      "in %.1f ms (chaos marked *)\n",
      completed, degraded, failed, shed, wall_ms);
  if (verified + unverified + witness_rejections > 0) {
    std::printf(
        "serve: verify: %zu verified, %zu unverified, "
        "%zu witness rejections\n",
        verified, unverified, witness_rejections);
  }
}

ServeReport ServeManifest(const Manifest& manifest,
                          const ServeOptions& options) {
  ServeEngine engine(options);
  const size_t n = manifest.requests.size();
  std::vector<RequestRow> rows(n);

  // Verification parses every distinct program up front, in manifest
  // order, before the first fork (see ServeEngine::PreloadProgram).
  if (options.verify) {
    for (const EvalRequest& request : manifest.requests) {
      engine.PreloadProgram(request.program_path);
    }
  }

  // Admission control: the batch arrives at once; waiting requests past
  // queue_capacity are shed with a structured row, never silently
  // dropped and never allowed to grow the queue without bound.
  std::map<uint64_t, size_t> index_of;
  for (size_t i = 0; i < n; ++i) {
    const EvalRequest& request = manifest.requests[i];
    if (options.queue_capacity > 0 && i >= options.queue_capacity) {
      rows[i].id = request.id;
      rows[i].kind = request.kind;
      rows[i].state = TerminalState::kShed;
      rows[i].failure_cause = "queue-full";
      continue;
    }
    // Durable serving: a request whose id already reached a terminal
    // state in the journal replays its recorded line without a worker;
    // one the previous daemon left in flight was already resubmitted on
    // recovery, so attach to that ticket instead of double-firing.
    switch (engine.LookupCompleted(request, &rows[i])) {
      case ServeEngine::CacheLookup::kHit:
        continue;
      case ServeEngine::CacheLookup::kMismatch:
        rows[i].id = request.id;
        rows[i].kind = request.kind;
        rows[i].state = TerminalState::kFailed;
        rows[i].failure_cause = "id-reuse-mismatch";
        continue;
      case ServeEngine::CacheLookup::kMiss:
        break;
    }
    bool mismatch = false;
    const uint64_t inflight = engine.FindInflight(request, &mismatch);
    if (mismatch) {
      rows[i].id = request.id;
      rows[i].kind = request.kind;
      rows[i].state = TerminalState::kFailed;
      rows[i].failure_cause = "id-reuse-mismatch";
      continue;
    }
    index_of[inflight != 0 ? inflight : engine.Submit(request)] = i;
  }

  std::vector<ServeEngine::Finished> finished;
  while (!engine.Idle()) {
    finished.clear();
    const bool progressed = engine.Pump(&finished);
    for (ServeEngine::Finished& f : finished) {
      // Recovered in-flight tickets the manifest does not mention still
      // run to a (journaled) terminal state; they just have no row here.
      auto it = index_of.find(f.ticket);
      if (it != index_of.end()) rows[it->second] = std::move(f.row);
    }
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  engine.FlushJournal();

  ServeReport report;
  const double wall_ms = engine.NowMs();
  for (size_t i = 0; i < n; ++i) {
    RequestRow& row = rows[i];
    row.manifest_index = i;
    row.total_ms = wall_ms;
    switch (row.state) {
      case TerminalState::kCompleted:
        ++report.completed;
        break;
      case TerminalState::kDegraded:
        ++report.degraded;
        break;
      case TerminalState::kFailed:
        ++report.failed;
        break;
      case TerminalState::kShed:
        ++report.shed;
        break;
    }
    switch (row.verify_outcome) {
      case VerifyOutcome::kVerified:
        ++report.verified;
        break;
      case VerifyOutcome::kUnverified:
        ++report.unverified;
        break;
      default:
        break;
    }
    report.rows.push_back(std::move(row));
  }
  report.witness_rejections = engine.witness_rejections();
  report.wall_ms = engine.NowMs();
  return report;
}

}  // namespace gqe
