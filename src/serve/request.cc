#include "serve/request.h"

#include <cstdlib>
#include <set>
#include <sstream>

#include "base/serialize.h"

namespace gqe {

namespace {

bool ParseKind(std::string_view value, RequestKind* kind) {
  if (value == "chase") *kind = RequestKind::kChase;
  else if (value == "cq") *kind = RequestKind::kCq;
  else if (value == "cqs") *kind = RequestKind::kCqs;
  else if (value == "omq") *kind = RequestKind::kOmq;
  else return false;
  return true;
}

bool ParseU64(std::string_view value, uint64_t* out) {
  if (value.empty()) return false;
  uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

// fault=kill@12 | stall@3 | oom | cpu | exit:7 — with an optional
// trailing "/attempt=N" selecting which attempt the fault fires on.
bool ParseFault(std::string_view value, FaultSpec* fault) {
  const size_t slash = value.find('/');
  if (slash != std::string_view::npos) {
    std::string_view attempt_part = value.substr(slash + 1);
    if (attempt_part.rfind("attempt=", 0) != 0) return false;
    uint64_t attempt = 0;
    if (!ParseU64(attempt_part.substr(8), &attempt) || attempt < 1) {
      return false;
    }
    fault->on_attempt = static_cast<int>(attempt);
    value = value.substr(0, slash);
  }
  const size_t at = value.find('@');
  std::string_view name = at == std::string_view::npos ? value
                                                       : value.substr(0, at);
  uint64_t checkpoint = 0;
  if (at != std::string_view::npos &&
      !ParseU64(value.substr(at + 1), &checkpoint)) {
    return false;
  }
  if (name == "kill") {
    fault->type = FaultSpec::Type::kKill;
  } else if (name == "stall") {
    fault->type = FaultSpec::Type::kStall;
  } else if (name == "oom") {
    fault->type = FaultSpec::Type::kOom;
  } else if (name == "cpu") {
    fault->type = FaultSpec::Type::kCpu;
  } else if (name.rfind("exit:", 0) == 0) {
    uint64_t code = 0;
    if (!ParseU64(name.substr(5), &code) || code > 255) return false;
    fault->type = FaultSpec::Type::kExit;
    fault->exit_code = static_cast<int>(code);
  } else {
    return false;
  }
  fault->at_checkpoint = checkpoint;
  return true;
}

std::string JoinPath(const std::string& base, const std::string& path) {
  if (path.empty() || path.front() == '/' || base.empty()) return path;
  return base + "/" + path;
}

}  // namespace

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kChase:
      return "chase";
    case RequestKind::kCq:
      return "cq";
    case RequestKind::kCqs:
      return "cqs";
    case RequestKind::kOmq:
      return "omq";
  }
  return "unknown";
}

bool ParseManifest(std::string_view text, const std::string& base_dir,
                   Manifest* manifest, std::string* error) {
  manifest->requests.clear();
  std::set<std::string> seen_ids;
  int line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    // Strip comments and surrounding whitespace.
    const size_t comment = line.find_first_of("#%");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) {
      if (end == text.size()) break;
      continue;
    }

    EvalRequest request;
    bool has_id = false, has_kind = false, has_program = false;
    std::stringstream fields{std::string(line)};
    std::string field;
    bool ok = true;
    std::string problem;
    while (ok && fields >> field) {
      const size_t eq = field.find('=');
      if (eq == std::string::npos) {
        ok = false;
        problem = "field '" + field + "' is not key=value";
        break;
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      uint64_t number = 0;
      if (key == "id") {
        request.id = value;
        has_id = !value.empty();
      } else if (key == "kind") {
        ok = ParseKind(value, &request.kind);
        has_kind = ok;
        if (!ok) problem = "unknown kind '" + value + "'";
      } else if (key == "program") {
        request.program_path = JoinPath(base_dir, value);
        has_program = !value.empty();
      } else if (key == "query") {
        request.query = value;
      } else if (key == "max_facts") {
        ok = ParseU64(value, &number);
        request.budget.max_facts = static_cast<size_t>(number);
        if (!ok) problem = "bad max_facts '" + value + "'";
      } else if (key == "max_nodes") {
        ok = ParseU64(value, &number);
        request.budget.max_search_nodes = number;
        if (!ok) problem = "bad max_nodes '" + value + "'";
      } else if (key == "deadline_ms") {
        char* parse_end = nullptr;
        request.budget.deadline_ms = std::strtod(value.c_str(), &parse_end);
        ok = parse_end != nullptr && *parse_end == '\0' &&
             request.budget.deadline_ms >= 0;
        if (!ok) problem = "bad deadline_ms '" + value + "'";
      } else if (key == "as_mb") {
        ok = ParseU64(value, &number);
        request.address_space_mb = static_cast<size_t>(number);
        if (!ok) problem = "bad as_mb '" + value + "'";
      } else if (key == "max_level") {
        ok = ParseU64(value, &number);
        request.max_level = static_cast<int>(number);
        if (!ok) problem = "bad max_level '" + value + "'";
      } else if (key == "fault") {
        ok = ParseFault(value, &request.fault);
        if (!ok) problem = "bad fault spec '" + value + "'";
      } else {
        ok = false;
        problem = "unknown key '" + key + "'";
      }
    }
    if (ok && !has_id) {
      ok = false;
      problem = "missing id=";
    }
    if (ok && !has_kind) {
      ok = false;
      problem = "missing kind=";
    }
    if (ok && !has_program) {
      ok = false;
      problem = "missing program=";
    }
    if (ok && !seen_ids.insert(request.id).second) {
      ok = false;
      problem = "duplicate id '" + request.id + "'";
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "manifest line " + std::to_string(line_number) + ": " +
                 problem;
      }
      return false;
    }
    manifest->requests.push_back(std::move(request));
    if (end == text.size()) break;
  }
  return true;
}

std::string FormatRequestLine(const EvalRequest& request) {
  std::string line = "id=" + request.id +
                     " kind=" + RequestKindName(request.kind) +
                     " program=" + request.program_path;
  if (!request.query.empty()) line += " query=" + request.query;
  char buffer[64];
  if (request.budget.max_facts != 0) {
    line += " max_facts=" + std::to_string(request.budget.max_facts);
  }
  if (request.budget.max_search_nodes != 0) {
    line += " max_nodes=" + std::to_string(request.budget.max_search_nodes);
  }
  if (request.budget.deadline_ms != 0) {
    // %.17g round-trips every double through strtod, so the journaled
    // line re-parses to a bit-identical budget.
    std::snprintf(buffer, sizeof(buffer), " deadline_ms=%.17g",
                  request.budget.deadline_ms);
    line += buffer;
  }
  if (request.address_space_mb != 0) {
    line += " as_mb=" + std::to_string(request.address_space_mb);
  }
  if (request.max_level >= 0) {
    line += " max_level=" + std::to_string(request.max_level);
  }
  if (request.fault.active()) {
    line += " fault=";
    switch (request.fault.type) {
      case FaultSpec::Type::kKill:
        line += "kill@" + std::to_string(request.fault.at_checkpoint);
        break;
      case FaultSpec::Type::kStall:
        line += "stall@" + std::to_string(request.fault.at_checkpoint);
        break;
      case FaultSpec::Type::kOom:
        line += "oom";
        if (request.fault.at_checkpoint != 0) {
          line += "@" + std::to_string(request.fault.at_checkpoint);
        }
        break;
      case FaultSpec::Type::kCpu:
        line += "cpu";
        if (request.fault.at_checkpoint != 0) {
          line += "@" + std::to_string(request.fault.at_checkpoint);
        }
        break;
      case FaultSpec::Type::kExit:
        line += "exit:" + std::to_string(request.fault.exit_code);
        break;
      case FaultSpec::Type::kNone:
        break;
    }
    if (request.fault.on_attempt != 1) {
      line += "/attempt=" + std::to_string(request.fault.on_attempt);
    }
  }
  return line;
}

bool ParseManifestFile(const std::string& path, Manifest* manifest,
                       std::string* error) {
  std::string text;
  SnapshotStatus status = ReadFileBytes(path, &text);
  if (!status.ok()) {
    if (error != nullptr) *error = status.message;
    return false;
  }
  std::string base_dir = ".";
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    base_dir = slash == 0 ? "/" : path.substr(0, slash);
  }
  return ParseManifest(text, base_dir, manifest, error);
}

}  // namespace gqe
