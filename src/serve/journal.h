#ifndef GQE_SERVE_JOURNAL_H_
#define GQE_SERVE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/serialize.h"
#include "serve/service.h"

namespace gqe {

/// The serving tier's append-only write-ahead request journal. Three
/// record types tell the whole story of a request:
///
///   ADMITTED  the request was accepted (its canonical manifest line,
///             written *before* the first worker fork)
///   ATTEMPT   one worker attempt finished, with its cause — enough to
///             restore the retry/degradation ladder after a restart
///   RESULT    the request reached a terminal state: the exact bytes of
///             its "result:" line plus the encoded WorkerResult (which
///             carries the witness, so --verify can re-check a persisted
///             answer before ever serving it again)
///
/// Records are length-prefixed CRC-32 envelopes (base/serialize.h, kind
/// kSnapshotKindJournalRecord) appended to numbered segment files. A
/// crash — the daemon's own `kill -9` included — can tear at most the
/// tail of the active segment; recovery truncates to the last valid
/// record and never invents state. Completed requests replay their
/// recorded result lines byte-identically; admitted-but-unfinished
/// requests resume from their checkpoint dirs with ladder state intact.
enum class JournalRecordType : uint8_t {
  kAdmitted = 1,
  kAttempt = 2,
  kResult = 3,
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kAdmitted;
  std::string id;

  /// kAdmitted: the canonical manifest line (FormatRequestLine) — enough
  /// to resubmit the request verbatim after a restart.
  std::string request_line;

  /// kAttempt: the finished attempt's number, phase and cause.
  uint32_t attempt = 0;
  bool degraded = false;
  std::string cause;

  /// kResult: terminal state, the exact result line (trailing newline
  /// included) and the encoded WorkerResult blob (empty for kFailed).
  TerminalState state = TerminalState::kFailed;
  std::string result_line;
  std::string worker_result;
};

/// Everything recovery learned about one request id, folded from its
/// records in append order.
struct JournalEntry {
  std::string id;
  std::string request_line;
  int exact_attempts = 0;
  int degraded_attempts = 0;
  std::vector<JournalRecord> attempt_records;  // kAttempt, append order
  bool has_result = false;
  TerminalState state = TerminalState::kFailed;
  std::string result_line;
  std::string worker_result;
};

/// What RequestJournal::Open reconstructed, plus the damage it skipped.
/// Damage is *diagnosed*, never trusted: a torn or bit-flipped record
/// ends replay of its segment, and orphan / duplicate records (possible
/// after interleaved garbage) are counted and ignored.
struct JournalRecovery {
  std::vector<JournalEntry> entries;  // admission order
  size_t segments = 0;
  size_t records = 0;
  size_t torn_bytes = 0;       // truncated off the active segment's tail
  size_t skipped_bytes = 0;    // invalid bytes inside sealed segments
  size_t orphan_records = 0;   // ATTEMPT/RESULT with no prior ADMITTED
  size_t duplicate_records = 0;  // re-ADMITTED id or second RESULT

  const JournalEntry* Find(const std::string& id) const;
};

struct JournalOptions {
  /// Rotate to a new segment once the active one passes this size.
  size_t segment_bytes = 4 * 1024 * 1024;

  /// fsync after every appended record. Strongest durability (power
  /// loss included); process death alone never loses write()n bytes, so
  /// the crash-recovery contract holds either way — see EXPERIMENTS.md
  /// for the overhead this buys.
  bool fsync_each_record = true;
};

/// Encodes one record as it appears on disk: u32 length prefix +
/// CRC-enveloped payload. Exposed for tests and the fuzz harness.
std::string EncodeJournalRecord(const JournalRecord& record);

/// Decodes a record sequence from raw segment bytes, stopping at the
/// first torn, corrupt or impossible record. Returns the byte length of
/// the valid prefix (what recovery keeps); `error` names the first
/// problem when the prefix does not cover `bytes`. Never throws, never
/// fabricates a record from damaged bytes.
size_t DecodeJournalSegment(std::string_view bytes,
                            std::vector<JournalRecord>* records,
                            std::string* error);

/// Folds records (append order, possibly from several segments) into
/// per-request entries, counting orphans and duplicates.
void ApplyJournalRecords(const std::vector<JournalRecord>& records,
                         JournalRecovery* recovery);

/// The journal itself: open-and-recover, then append. Single-threaded,
/// like everything else in the serving supervisor. Append failures (disk
/// full, dead fd) latch the journal into a sticky failed state — the
/// daemon keeps serving, it just stops being durable, and the condition
/// is visible in stats().
class RequestJournal {
 public:
  RequestJournal() = default;
  ~RequestJournal();

  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;

  /// Creates `dir` if needed, replays every segment in order into
  /// `recovery` (which may be null), truncates the active segment to its
  /// last valid record, and reopens it for appending.
  SnapshotStatus Open(const std::string& dir, const JournalOptions& options,
                      JournalRecovery* recovery);

  bool open() const { return fd_ >= 0 && !failed_; }
  const std::string& dir() const { return dir_; }

  SnapshotStatus Append(const JournalRecord& record);
  SnapshotStatus AppendAdmitted(const std::string& id,
                                const std::string& request_line);
  SnapshotStatus AppendAttempt(const std::string& id, uint32_t attempt,
                               bool degraded, const std::string& cause);
  SnapshotStatus AppendResult(const std::string& id, TerminalState state,
                              const std::string& result_line,
                              const std::string& worker_result);

  /// fsyncs the active segment (a no-op when fsync_each_record already
  /// covered every append). The graceful-drain path calls this before
  /// exit 0.
  SnapshotStatus Sync();

  /// Rewrites the journal as one fresh segment holding only `entries`
  /// (each as ADMITTED [+ ATTEMPTs] [+ RESULT]), via tmp+fsync+rename,
  /// then deletes the old segments. Run after recovery to shed dead
  /// weight from rotated segments.
  SnapshotStatus Compact(const std::vector<JournalEntry>& entries);

  struct Stats {
    uint64_t appends = 0;
    uint64_t syncs = 0;
    uint64_t rotations = 0;
    uint64_t compactions = 0;
    uint64_t append_failures = 0;
    size_t active_bytes = 0;
    bool failed = false;  // sticky: journal disabled after a failure
  };
  const Stats& stats() const { return stats_; }

 private:
  SnapshotStatus OpenActiveSegment();
  SnapshotStatus RotateIfNeeded();
  SnapshotStatus Fail(SnapshotError error, std::string message);
  std::string SegmentPath(uint64_t seq) const;

  std::string dir_;
  JournalOptions options_;
  int fd_ = -1;
  uint64_t active_seq_ = 0;
  bool failed_ = false;
  Stats stats_;
};

}  // namespace gqe

#endif  // GQE_SERVE_JOURNAL_H_
