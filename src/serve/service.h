#ifndef GQE_SERVE_SERVICE_H_
#define GQE_SERVE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.h"
#include "serve/worker.h"
#include "workload/report.h"

namespace gqe {

/// Chaos-injection configuration (`--chaos kill=p,oom=p,stall=p`): each
/// non-degraded attempt independently draws one fault with the given
/// probabilities from a deterministic per-(request, attempt) PRNG, so a
/// chaos run is reproducible bit-for-bit from its seed regardless of
/// scheduling order.
struct ChaosConfig {
  double kill_p = 0.0;
  double oom_p = 0.0;
  double stall_p = 0.0;
  uint64_t seed = 1;

  /// Injected kills/stalls fire at a random governor checkpoint in
  /// [1, max_checkpoint] — early enough to land mid-run on real work.
  uint64_t max_checkpoint = 4096;

  /// Never inject into a request's final exact attempt. This keeps chaos
  /// a test of the *containment* path, not the degradation path: with it,
  /// every request reaches the terminal state of a fault-free run (the
  /// soak criterion), even at kill probability 1.
  bool spare_final_attempt = true;

  bool enabled() const { return kill_p > 0 || oom_p > 0 || stall_p > 0; }
};

/// Parses "kill=0.3,oom=0.1,stall=0.1" (any subset, any order). Also
/// accepts "seed=N" and "ckpt=N" (max_checkpoint — match it to the
/// workload size so injected kills land mid-run instead of after it).
bool ParseChaosSpec(std::string_view spec, ChaosConfig* config,
                    std::string* error);

/// Daemon policy knobs.
struct ServeOptions {
  /// Workers running at once. The supervisor itself stays single-threaded
  /// (fork safety); concurrency comes from overlapping children.
  int concurrency = 4;

  /// Admission control: requests beyond this many waiting are shed with a
  /// structured row instead of queued without bound. 0 = unbounded.
  size_t queue_capacity = 0;

  /// Exact attempts per request before the degradation ladder.
  int max_attempts = 5;

  /// Exponential backoff between attempts: min(cap, base * 2^(n-1)),
  /// scaled by deterministic jitter in [0.5, 1.5) from `jitter_seed`.
  double backoff_base_ms = 25.0;
  double backoff_cap_ms = 1000.0;
  uint64_t jitter_seed = 1;

  /// Worker liveness: the child heartbeats every `heartbeat_interval_ms`;
  /// missing beats for `heartbeat_timeout_ms` gets it SIGKILLed (this is
  /// what catches SIGSTOP stalls and livelocks). A non-zero
  /// `wall_timeout_ms` additionally caps each attempt's wall clock.
  double heartbeat_interval_ms = 20.0;
  double heartbeat_timeout_ms = 1500.0;
  double wall_timeout_ms = 0.0;

  /// Checkpoint root: each request gets <work_dir>/<id>/ so retries
  /// resume instead of recomputing. Empty = a fresh temp directory,
  /// removed when the report is done (unless keep_work_dir).
  std::string work_dir;
  bool keep_work_dir = false;

  ChaosConfig chaos;

  /// Graceful degradation after the exact retry budget: up to
  /// `degraded_attempts` runs under the tighter degraded_* budget
  /// (answers flagged inexact), and only then a structured FAILED row.
  bool enable_degraded_ladder = true;
  int degraded_attempts = 2;
  size_t degraded_max_facts = 20000;
  uint64_t degraded_max_nodes = 500000;
  double degraded_deadline_ms = 2000.0;
  int degraded_fallback_level = 3;

  /// Durable serving (--journal-dir): every admission, finished attempt
  /// and terminal result is appended to a write-ahead journal under this
  /// directory (serve/journal.h) *before* it becomes client-visible. On
  /// the next startup with the same directory, completed requests replay
  /// their recorded result lines byte-identically from the journal-backed
  /// cache (no worker fires), and admitted-but-unfinished requests are
  /// resubmitted with their retry-ladder state restored, resuming from
  /// their checkpoint dirs. Empty = no journal (the pre-PR-9 behavior).
  /// When set and work_dir is empty, checkpoints default to
  /// <journal_dir>/work so resume survives restarts too.
  std::string journal_dir;
  /// fsync the journal after every record (power-loss durability; plain
  /// process death never loses write()n records either way).
  bool journal_fsync = true;
  size_t journal_segment_bytes = 4 * 1024 * 1024;

  /// Per-attempt progress lines on stdout.
  bool verbose = false;

  /// Certified answers (--verify): workers collect a machine-checkable
  /// witness with every result, and the supervisor independently
  /// re-checks it — replaying chase derivation logs step-by-step and
  /// homomorphism certificates atom-by-atom against its *own* parse of
  /// the program — before emitting the result line. A result whose
  /// certificate fails a check is discarded ("bad-witness") and the
  /// attempt walks the normal retry/degradation ladder; a result with no
  /// full certificate (e.g. resumed from a pre-witness snapshot) is
  /// accepted but flagged unverified. The supervisor parses every
  /// distinct program up front, before the first fork, so worker
  /// children inherit an identical interner and digests stay comparable.
  bool verify = false;
};

/// Terminal state of a request. Every admitted request ends in exactly
/// one of these — the daemon never drops a request on the floor.
enum class TerminalState : int {
  kCompleted = 0,  // exact evaluation succeeded
  kDegraded = 1,   // degraded-ladder answer (sound, flagged inexact)
  kFailed = 2,     // structured failure row with the worker's exit cause
  kShed = 3,       // rejected by admission control
};

const char* TerminalStateName(TerminalState state);

/// One worker attempt as the supervisor saw it.
struct AttemptRecord {
  int attempt = 1;
  bool degraded = false;
  /// "ok", "sigkill", "sigsegv", "cpu-limit", "oom", "heartbeat-timeout",
  /// "wall-timeout", "parse-error", "bad-request", "bad-result",
  /// "spawn-error", "exit:<code>" or "signal:<n>".
  std::string cause;
  /// True when the supervisor injected a chaos fault into this attempt.
  bool chaos = false;
  double ms = 0.0;
  /// Backoff waited before this attempt started.
  double backoff_ms = 0.0;
};

/// Final per-request row.
struct RequestRow {
  size_t manifest_index = 0;
  std::string id;
  RequestKind kind = RequestKind::kChase;
  TerminalState state = TerminalState::kFailed;
  /// Valid for kCompleted / kDegraded.
  WorkerResult result;
  /// Last attempt's cause for kFailed ("queue-full" for kShed).
  std::string failure_cause;
  std::vector<AttemptRecord> attempts;
  double total_ms = 0.0;
  double retry_wait_ms = 0.0;

  /// Supervisor-side witness check of the accepted result (kNotChecked
  /// unless ServeOptions::verify). `verify_reason` explains kUnverified.
  VerifyOutcome verify_outcome = VerifyOutcome::kNotChecked;
  std::string verify_reason;

  /// Journal replay: when nonempty, AppendResultLine emits exactly these
  /// bytes (the line recorded when the request first completed) instead
  /// of re-formatting the row — the byte-identity guarantee across
  /// daemon restarts reduces to string equality.
  std::string replayed_line;
};

struct ServeReport {
  std::vector<RequestRow> rows;  // manifest order
  size_t completed = 0;
  size_t degraded = 0;
  size_t failed = 0;
  size_t shed = 0;
  double wall_ms = 0.0;

  /// Verification tallies (--verify): results whose certificate was
  /// independently re-checked, results accepted without a full
  /// certificate, and attempts discarded for a failed check.
  size_t verified = 0;
  size_t unverified = 0;
  size_t witness_rejections = 0;

  /// One "result:" line per request, manifest order, containing only
  /// fault-invariant fields (terminal state, status, answer digest,
  /// counts — no attempts, no latency). A chaos run and a fault-free run
  /// of the same manifest produce bit-identical text; the chaos smoke
  /// diffs exactly this.
  std::string DeterministicText() const;

  /// Operational tables (attempts, causes, resume generations, latency,
  /// retry waits) via ReportTable — the part that legitimately differs
  /// under chaos.
  void PrintOps(const std::string& title) const;
};

/// Formats one request's deterministic "result:" line (trailing newline
/// included). Both ServeReport::DeterministicText and the network result
/// frames are built from exactly this function, which is what makes a
/// TCP-served answer byte-comparable against the file-manifest path.
void AppendResultLine(const RequestRow& row, std::string* out);

/// The retry/degradation supervisor behind both serving front ends,
/// exposed as an incremental engine: callers submit requests one at a
/// time and pump the scheduler from their own loop. ServeManifest drives
/// it to completion over a batch; the network server (net/server.h)
/// pumps it from the epoll loop as request frames arrive.
///
/// Single-threaded by contract: workers are forked without exec, which
/// is only safe while the process has one thread (see base/subprocess.h).
/// All methods must be called from the same thread.
class ServeEngine {
 public:
  explicit ServeEngine(const ServeOptions& options);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Milliseconds since the engine was built (the scheduler clock every
  /// deadline below is measured against).
  double NowMs() const;

  /// Parses and caches `path` for witness re-checking (verify mode).
  /// Parsing must precede the first worker fork touching the program so
  /// children inherit an identical interner; Submit calls this itself,
  /// so explicit preloading is only an ordering optimization for batch
  /// callers.
  void PreloadProgram(const std::string& path);

  /// Accepts a request (copied) and returns its ticket. No admission
  /// control happens here — front ends shed *before* submitting, each
  /// with its own policy (batch: queue_capacity index cut; network:
  /// structured OVERLOADED frames).
  uint64_t Submit(const EvalRequest& request);

  struct Finished {
    uint64_t ticket = 0;
    RequestRow row;
  };

  /// One scheduler step: launches ready attempts (respecting
  /// concurrency and backoff), polls in-flight workers, classifies
  /// exits, and appends every request that reached a terminal state to
  /// `finished`. Returns true when a worker made observable progress —
  /// callers sleep (or epoll-wait) briefly when it returns false.
  bool Pump(std::vector<Finished>* finished);

  /// True when no submitted request is waiting or running.
  bool Idle() const;

  /// Requests submitted but not yet harvested through Pump.
  size_t ActiveJobs() const;

  /// Worker processes currently alive.
  size_t InflightWorkers() const;

  size_t witness_rejections() const;

  /// Journal-backed result cache lookup (idempotent replay). kHit fills
  /// `row` with the recorded terminal state and the verbatim recorded
  /// result line (row.replayed_line); under ServeOptions::verify the
  /// persisted witness is independently re-checked first, and a result
  /// whose certificate no longer verifies is dropped from the cache
  /// (kMiss — the caller resubmits and a fresh worker recomputes).
  /// kMismatch means the id was seen before with a *different* canonical
  /// request line — an id reuse, which front ends reject. Always kMiss
  /// when no journal is configured.
  enum class CacheLookup { kMiss, kHit, kMismatch };
  CacheLookup LookupCompleted(const EvalRequest& request, RequestRow* row);

  /// Ticket of the in-flight (admitted, not yet terminal) request with
  /// this id, or 0. Lets a front end attach a second waiter to the same
  /// evaluation — duplicate-id coalescing, which with the journal
  /// extends across restarts. `mismatch` is set instead when the id is
  /// in flight under a different canonical request line.
  uint64_t FindInflight(const EvalRequest& request, bool* mismatch);

  /// fsyncs the journal (graceful drain calls this before exit 0).
  void FlushJournal();

  /// Journal health and replay counters for stats lines and ops logs.
  struct JournalInfo {
    bool enabled = false;
    bool failed = false;
    size_t recovered_completed = 0;  // entries replayable from the cache
    size_t recovered_inflight = 0;   // entries resubmitted on startup
    size_t torn_bytes = 0;           // truncated off the tail on recovery
    size_t hits = 0;                 // requests served from the cache
    size_t verify_rejections = 0;    // cached results dropped by --verify
  };
  JournalInfo journal_info() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Runs every manifest request to a terminal state in fork-isolated
/// workers under the options' containment policy. Never throws for
/// worker-side trouble; the process running ServeManifest survives any
/// worker segfault, OOM kill, rlimit trip or stall.
ServeReport ServeManifest(const Manifest& manifest,
                          const ServeOptions& options);

}  // namespace gqe

#endif  // GQE_SERVE_SERVICE_H_
