#include "serve/journal.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "base/subprocess.h"

namespace gqe {

namespace {

// A single journal record larger than this is not something the serving
// tier ever writes (result lines and witness blobs are far smaller); a
// bigger length prefix is treated as corruption, which keeps a
// bit-flipped length from driving a giant allocation during recovery.
constexpr uint32_t kMaxJournalRecordBytes = 64u << 20;

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".seg";

void PutU32(uint32_t value, std::string* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(*p++)) << shift;
  }
  return value;
}

void EncodeRecordPayload(const JournalRecord& record, BinaryWriter* writer) {
  writer->WriteU8(static_cast<uint8_t>(record.type));
  writer->WriteString(record.id);
  switch (record.type) {
    case JournalRecordType::kAdmitted:
      writer->WriteString(record.request_line);
      break;
    case JournalRecordType::kAttempt:
      writer->WriteU32(record.attempt);
      writer->WriteBool(record.degraded);
      writer->WriteString(record.cause);
      break;
    case JournalRecordType::kResult:
      writer->WriteU8(static_cast<uint8_t>(static_cast<int>(record.state)));
      writer->WriteString(record.result_line);
      writer->WriteString(record.worker_result);
      break;
  }
}

bool DecodeRecordPayload(std::string_view payload, JournalRecord* record,
                         std::string* error) {
  BinaryReader reader(payload);
  uint8_t type = 0;
  if (!reader.ReadU8(&type) || !reader.ReadString(&record->id)) {
    *error = "journal record header does not decode";
    return false;
  }
  switch (type) {
    case static_cast<uint8_t>(JournalRecordType::kAdmitted):
      record->type = JournalRecordType::kAdmitted;
      if (!reader.ReadString(&record->request_line)) {
        *error = "ADMITTED record does not decode";
        return false;
      }
      break;
    case static_cast<uint8_t>(JournalRecordType::kAttempt):
      record->type = JournalRecordType::kAttempt;
      if (!reader.ReadU32(&record->attempt) ||
          !reader.ReadBool(&record->degraded) ||
          !reader.ReadString(&record->cause)) {
        *error = "ATTEMPT record does not decode";
        return false;
      }
      break;
    case static_cast<uint8_t>(JournalRecordType::kResult): {
      record->type = JournalRecordType::kResult;
      uint8_t state = 0;
      if (!reader.ReadU8(&state) || !reader.ReadString(&record->result_line) ||
          !reader.ReadString(&record->worker_result) ||
          state > static_cast<uint8_t>(TerminalState::kShed)) {
        *error = "RESULT record does not decode";
        return false;
      }
      record->state = static_cast<TerminalState>(state);
      break;
    }
    default:
      *error = "unknown journal record type " + std::to_string(type);
      return false;
  }
  if (!reader.AtEnd()) {
    *error = "journal record has trailing bytes";
    return false;
  }
  return true;
}

}  // namespace

const JournalEntry* JournalRecovery::Find(const std::string& id) const {
  for (const JournalEntry& entry : entries) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

std::string EncodeJournalRecord(const JournalRecord& record) {
  BinaryWriter writer;
  EncodeRecordPayload(record, &writer);
  const std::string envelope =
      WrapSnapshot(kSnapshotKindJournalRecord, writer.buffer());
  std::string out;
  out.reserve(4 + envelope.size());
  PutU32(static_cast<uint32_t>(envelope.size()), &out);
  out += envelope;
  return out;
}

size_t DecodeJournalSegment(std::string_view bytes,
                            std::vector<JournalRecord>* records,
                            std::string* error) {
  size_t pos = 0;
  if (error != nullptr) error->clear();
  while (pos + 4 <= bytes.size()) {
    const uint32_t length = GetU32(bytes.data() + pos);
    if (length > kMaxJournalRecordBytes) {
      if (error != nullptr) {
        *error = "impossible record length " + std::to_string(length);
      }
      return pos;
    }
    if (pos + 4 + length > bytes.size()) {
      if (error != nullptr) *error = "torn tail record";
      return pos;
    }
    std::string_view envelope = bytes.substr(pos + 4, length);
    std::string_view payload;
    const SnapshotStatus status =
        UnwrapSnapshot(envelope, kSnapshotKindJournalRecord, &payload);
    if (!status.ok()) {
      if (error != nullptr) *error = status.message;
      return pos;
    }
    JournalRecord record;
    std::string decode_error;
    if (!DecodeRecordPayload(payload, &record, &decode_error)) {
      if (error != nullptr) *error = decode_error;
      return pos;
    }
    if (records != nullptr) records->push_back(std::move(record));
    pos += 4 + length;
  }
  if (pos < bytes.size() && error != nullptr && error->empty()) {
    *error = "torn tail record";
  }
  return pos;
}

void ApplyJournalRecords(const std::vector<JournalRecord>& records,
                         JournalRecovery* recovery) {
  std::map<std::string, size_t> index;
  for (const JournalEntry& entry : recovery->entries) {
    index[entry.id] = static_cast<size_t>(&entry - recovery->entries.data());
  }
  for (const JournalRecord& record : records) {
    ++recovery->records;
    auto it = index.find(record.id);
    switch (record.type) {
      case JournalRecordType::kAdmitted: {
        if (it != index.end()) {
          ++recovery->duplicate_records;
          break;
        }
        JournalEntry entry;
        entry.id = record.id;
        entry.request_line = record.request_line;
        index[record.id] = recovery->entries.size();
        recovery->entries.push_back(std::move(entry));
        break;
      }
      case JournalRecordType::kAttempt: {
        if (it == index.end()) {
          ++recovery->orphan_records;
          break;
        }
        JournalEntry& entry = recovery->entries[it->second];
        if (entry.has_result) {
          // An attempt after the terminal record is out of order —
          // possible only under corruption; the result stands.
          ++recovery->duplicate_records;
          break;
        }
        if (record.degraded) {
          ++entry.degraded_attempts;
        } else {
          ++entry.exact_attempts;
        }
        entry.attempt_records.push_back(record);
        break;
      }
      case JournalRecordType::kResult: {
        if (it == index.end()) {
          ++recovery->orphan_records;
          break;
        }
        JournalEntry& entry = recovery->entries[it->second];
        if (entry.has_result) {
          ++recovery->duplicate_records;  // first terminal record wins
          break;
        }
        entry.has_result = true;
        entry.state = record.state;
        entry.result_line = record.result_line;
        entry.worker_result = record.worker_result;
        break;
      }
    }
  }
}

RequestJournal::~RequestJournal() {
  if (fd_ >= 0) {
    if (!failed_) ::fsync(fd_);
    ::close(fd_);
  }
}

std::string RequestJournal::SegmentPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return dir_ + "/" + name;
}

SnapshotStatus RequestJournal::Open(const std::string& dir,
                                    const JournalOptions& options,
                                    JournalRecovery* recovery) {
  dir_ = dir;
  options_ = options;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Fail(SnapshotError::kIoError,
                "cannot create journal dir " + dir_ + ": " + ec.message());
  }

  // Segments replay in ascending sequence order; only the last (active)
  // one may legitimately end in a torn record, because rotation fsyncs a
  // segment before opening its successor.
  std::vector<uint64_t> seqs;
  for (const auto& dirent : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = dirent.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) != 0 ||
        name.size() <= strlen(kSegmentPrefix) + strlen(kSegmentSuffix) ||
        name.compare(name.size() - strlen(kSegmentSuffix),
                     strlen(kSegmentSuffix), kSegmentSuffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        strlen(kSegmentPrefix),
        name.size() - strlen(kSegmentPrefix) - strlen(kSegmentSuffix));
    uint64_t seq = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      seq = seq * 10 + static_cast<uint64_t>(c - '0');
    }
    if (numeric) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());

  JournalRecovery local;
  JournalRecovery* rec = recovery != nullptr ? recovery : &local;
  *rec = JournalRecovery{};
  rec->segments = seqs.size();

  std::vector<JournalRecord> records;
  for (size_t i = 0; i < seqs.size(); ++i) {
    const std::string path = SegmentPath(seqs[i]);
    std::string bytes;
    const SnapshotStatus read = ReadFileBytes(path, &bytes);
    if (!read.ok()) {
      return Fail(read.error, "journal segment " + path + ": " + read.message);
    }
    std::string error;
    const size_t valid = DecodeJournalSegment(bytes, &records, &error);
    if (valid < bytes.size()) {
      const size_t damage = bytes.size() - valid;
      if (i + 1 == seqs.size()) {
        // The active segment: a crash tore its tail. Truncate to the
        // last valid record so appends continue from a clean boundary.
        rec->torn_bytes += damage;
        if (::truncate(path.c_str(), static_cast<off_t>(valid)) != 0) {
          return Fail(SnapshotError::kIoError,
                      "cannot truncate torn journal tail of " + path);
        }
      } else {
        // A sealed segment should never be damaged (it was fsynced at
        // rotation); diagnose, skip the damage, keep replaying — the
        // per-record CRC means nothing bogus got into `records`.
        rec->skipped_bytes += damage;
      }
    }
  }
  ApplyJournalRecords(records, rec);

  active_seq_ = seqs.empty() ? 1 : seqs.back();
  const SnapshotStatus status = OpenActiveSegment();
  if (!status.ok()) return status;
  return RotateIfNeeded();
}

SnapshotStatus RequestJournal::OpenActiveSegment() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = SegmentPath(active_seq_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Fail(SnapshotError::kIoError,
                "cannot open journal segment " + path);
  }
  struct stat st = {};
  stats_.active_bytes =
      ::fstat(fd_, &st) == 0 ? static_cast<size_t>(st.st_size) : 0;
  return SnapshotStatus::Ok();
}

SnapshotStatus RequestJournal::RotateIfNeeded() {
  if (stats_.active_bytes < options_.segment_bytes) {
    return SnapshotStatus::Ok();
  }
  // Seal the active segment (fsync so a sealed segment can never be
  // torn), then start its successor.
  if (::fsync(fd_) != 0) {
    return Fail(SnapshotError::kIoError, "fsync failed sealing segment");
  }
  ++active_seq_;
  ++stats_.rotations;
  const SnapshotStatus status = OpenActiveSegment();
  if (!status.ok()) return status;
  return FsyncParentDir(SegmentPath(active_seq_));
}

SnapshotStatus RequestJournal::Append(const JournalRecord& record) {
  if (failed_) {
    return SnapshotStatus::Fail(SnapshotError::kIoError, "journal failed");
  }
  if (fd_ < 0) {
    return SnapshotStatus::Fail(SnapshotError::kIoError, "journal not open");
  }
  const std::string bytes = EncodeJournalRecord(record);
  int io_errno = 0;
  if (!WriteAllToFd(fd_, bytes, &io_errno)) {
    return Fail(SnapshotError::kIoError,
                std::string("journal append failed: ") + strerror(io_errno));
  }
  stats_.active_bytes += bytes.size();
  ++stats_.appends;
  if (options_.fsync_each_record && ::fsync(fd_) != 0) {
    return Fail(SnapshotError::kIoError, "journal fsync failed");
  }
  return RotateIfNeeded();
}

SnapshotStatus RequestJournal::AppendAdmitted(const std::string& id,
                                              const std::string& request_line) {
  JournalRecord record;
  record.type = JournalRecordType::kAdmitted;
  record.id = id;
  record.request_line = request_line;
  return Append(record);
}

SnapshotStatus RequestJournal::AppendAttempt(const std::string& id,
                                             uint32_t attempt, bool degraded,
                                             const std::string& cause) {
  JournalRecord record;
  record.type = JournalRecordType::kAttempt;
  record.id = id;
  record.attempt = attempt;
  record.degraded = degraded;
  record.cause = cause;
  return Append(record);
}

SnapshotStatus RequestJournal::AppendResult(const std::string& id,
                                            TerminalState state,
                                            const std::string& result_line,
                                            const std::string& worker_result) {
  JournalRecord record;
  record.type = JournalRecordType::kResult;
  record.id = id;
  record.state = state;
  record.result_line = result_line;
  record.worker_result = worker_result;
  return Append(record);
}

SnapshotStatus RequestJournal::Sync() {
  if (failed_ || fd_ < 0) {
    return SnapshotStatus::Fail(SnapshotError::kIoError, "journal not open");
  }
  if (::fsync(fd_) != 0) {
    return Fail(SnapshotError::kIoError, "journal fsync failed");
  }
  ++stats_.syncs;
  return SnapshotStatus::Ok();
}

SnapshotStatus RequestJournal::Compact(
    const std::vector<JournalEntry>& entries) {
  if (failed_) {
    return SnapshotStatus::Fail(SnapshotError::kIoError, "journal failed");
  }
  std::string bytes;
  for (const JournalEntry& entry : entries) {
    JournalRecord admitted;
    admitted.type = JournalRecordType::kAdmitted;
    admitted.id = entry.id;
    admitted.request_line = entry.request_line;
    bytes += EncodeJournalRecord(admitted);
    // Live (unfinished) entries keep their attempt history so the retry
    // ladder restores exactly; a completed entry only needs its result.
    if (!entry.has_result) {
      for (const JournalRecord& attempt : entry.attempt_records) {
        bytes += EncodeJournalRecord(attempt);
      }
    } else {
      JournalRecord result;
      result.type = JournalRecordType::kResult;
      result.id = entry.id;
      result.state = entry.state;
      result.result_line = entry.result_line;
      result.worker_result = entry.worker_result;
      bytes += EncodeJournalRecord(result);
    }
  }

  // The compacted state lands as the *next* segment via the atomic
  // tmp+fsync+rename path, so a crash mid-compaction leaves either the
  // old segments or old + new (replay is idempotent) — never a hole.
  const uint64_t old_first = 1;
  const uint64_t compact_seq = active_seq_ + 1;
  const std::string compact_path = SegmentPath(compact_seq);
  const SnapshotStatus wrote = WriteFileAtomic(compact_path, bytes);
  if (!wrote.ok()) return Fail(wrote.error, wrote.message);

  for (uint64_t seq = old_first; seq <= active_seq_; ++seq) {
    std::error_code ec;
    std::filesystem::remove(SegmentPath(seq), ec);
  }
  FsyncParentDir(compact_path);

  active_seq_ = compact_seq;
  ++stats_.compactions;
  return OpenActiveSegment();
}

SnapshotStatus RequestJournal::Fail(SnapshotError error, std::string message) {
  failed_ = true;
  stats_.failed = true;
  ++stats_.append_failures;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return SnapshotStatus::Fail(error, std::move(message));
}

}  // namespace gqe
