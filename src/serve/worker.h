#ifndef GQE_SERVE_WORKER_H_
#define GQE_SERVE_WORKER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/serialize.h"
#include "serve/request.h"

namespace gqe {

/// Worker exit codes the supervisor classifies. Anything else (including
/// signal deaths) is treated as a crash and retried.
constexpr int kWorkerExitOk = 0;
/// The program file failed to read or parse — permanent, never retried.
constexpr int kWorkerExitParseError = 10;
/// The request references a query the program does not define — permanent.
constexpr int kWorkerExitBadRequest = 11;
/// An allocation failed (rlimit-AS or genuine memory pressure) — retried,
/// and eligible for the degradation ladder (a smaller budget may fit).
constexpr int kWorkerExitOom = 12;
/// The result blob could not be written back (I/O failure on the pipe).
constexpr int kWorkerExitResultWriteError = 13;
/// The result pipe's reader vanished (EPIPE/ECONNRESET): the supervisor
/// died or abandoned this attempt. Distinct from a write failure so the
/// loss is attributed to the right side of the pipe.
constexpr int kWorkerExitSupervisorGone = 14;

const char* WorkerExitCodeName(int code);

/// What a worker computed, serialized over the result pipe. Contains only
/// scalars and strings — decoding never touches the interner, so the
/// supervisor (which parses no programs) can read it from any child.
struct WorkerResult {
  std::string id;
  /// Governor status of the evaluation (deadline/budget trips end up
  /// here, not as process failures: the request asked for that budget).
  Status status = Status::kCompleted;
  /// False when answers are a sound under-approximation (governed trip,
  /// bounded-chase fallback, or a degraded-ladder run).
  bool exact = true;
  /// True when this result came from a degraded-ladder attempt.
  bool degraded = false;
  /// Evaluation method (kind name, or the OMQ engine's method string).
  std::string method;

  /// Canonical answer digest: number of tuples and CRC-32 of the sorted
  /// textual answer list (queries), or fact count and CRC-32 of the
  /// serialized instance (chase). Equal digests <=> bit-identical output.
  uint64_t answer_count = 0;
  uint32_t answer_crc = 0;
  uint64_t facts = 0;

  /// Chase round counters: total committed rounds of the logical run and
  /// the checkpoint generation this attempt resumed from (0 = fresh).
  /// A retried worker that resumed shows resume_generation > 0 while
  /// rounds_completed matches the fault-free run — the "no recompute
  /// from round 0" witness.
  uint64_t rounds_completed = 0;
  bool resumed = false;
  uint64_t resume_generation = 0;

  double eval_ms = 0.0;

  /// Serialized EvalWitness blob (verify/witness.h), empty when witness
  /// collection was off. The supervisor decodes and independently
  /// re-checks it against its own parse of the program before trusting
  /// the digest above.
  std::string witness;
};

std::string EncodeWorkerResult(const WorkerResult& result);
SnapshotStatus DecodeWorkerResult(std::string_view bytes,
                                  WorkerResult* result);

/// Everything the forked child needs to run one attempt.
struct WorkerInvocation {
  EvalRequest request;
  int attempt = 1;
  /// Degradation-ladder attempt: evaluation runs under the (smaller)
  /// budget already folded into request.budget by the supervisor and the
  /// result is marked degraded / not exact.
  bool degraded = false;
  /// OMQ bounded-chase fallback level used for degraded attempts.
  int degraded_fallback_level = 4;
  /// Per-request checkpoint directory (chase + omq resume). Empty = no
  /// checkpointing (then every retry recomputes from scratch).
  std::string checkpoint_dir;
  double heartbeat_interval_ms = 25.0;
  /// The fault this attempt must inject into itself (chaos or manifest).
  FaultSpec fault;
  /// Collect a machine-checkable certificate alongside the result
  /// (supervisor --verify mode).
  bool collect_witness = false;
};

/// Child-side entry point: parses the program, evaluates the request
/// under a governor built from its budget, injects `fault` at the
/// prescribed checkpoint, writes the encoded WorkerResult to `result_fd`
/// and returns the exit code. Runs inside the forked worker; callable
/// in-process from tests only with a non-lethal fault spec.
int RunWorkerInProcess(const WorkerInvocation& invocation, int result_fd,
                       int heartbeat_fd);

}  // namespace gqe

#endif  // GQE_SERVE_WORKER_H_
