#include "serve/worker.h"

#include <signal.h>

#include <memory>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "base/subprocess.h"
#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "cqs/cqs.h"
#include "cqs/evaluation.h"
#include "omq/evaluation.h"
#include "omq/omq.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "verify/witness.h"
#include "workload/report.h"

namespace gqe {

namespace {

/// Address-space cap the OOM fault installs, and the allocation it then
/// attempts. The allocation is strictly larger than the cap, so the
/// bad_alloc is deterministic no matter how much memory the worker
/// already mapped.
constexpr size_t kOomFaultLimitBytes = 64ull << 20;
constexpr size_t kOomFaultProbeBytes = 128ull << 20;

void ApplyPreEvalFault(const FaultSpec& fault) {
  switch (fault.type) {
    case FaultSpec::Type::kExit:
      ::_exit(fault.exit_code);
    case FaultSpec::Type::kKill:
      if (fault.at_checkpoint == 0) ::raise(SIGKILL);
      break;
    case FaultSpec::Type::kStall:
      if (fault.at_checkpoint == 0) ::raise(SIGSTOP);
      break;
    case FaultSpec::Type::kOom: {
      WorkerLimits limits;
      limits.address_space_bytes = kOomFaultLimitBytes;
      InstallWorkerLimits(limits);
      // Force the cap to bite now: this throws std::bad_alloc, which the
      // worker entry point turns into kWorkerExitOom. A direct
      // operator-new call — a `new[]`/`delete[]` pair may legally be
      // elided by the optimizer, and then no allocation ever happens.
      void* probe = ::operator new(kOomFaultProbeBytes);
      *static_cast<volatile char*>(probe) = 1;
      ::operator delete(probe);
      break;
    }
    case FaultSpec::Type::kCpu: {
      WorkerLimits limits;
      limits.cpu_seconds = 1.0;
      InstallWorkerLimits(limits);
      // Spin until the kernel's SIGXCPU arrives — a cpu-limit death.
      volatile uint64_t sink = 0;
      for (;;) sink = sink + 1;
      break;
    }
    case FaultSpec::Type::kNone:
      break;
  }
}

/// After the governed evaluation returns: a kill/stall fault whose
/// checkpoint was reached tripped the injector (status kCancelled); the
/// worker now dies the prescribed death at a deterministic logical point.
/// If the run finished before the checkpoint, the fault misses — exactly
/// like a real chaos kill racing a fast request.
void ApplyPostEvalFault(const FaultSpec& fault, Status status) {
  if (status != Status::kCancelled) return;
  if (fault.type == FaultSpec::Type::kKill) ::raise(SIGKILL);
  if (fault.type == FaultSpec::Type::kStall) ::raise(SIGSTOP);
}

/// Canonical textual digest of query answers: "name(t1, t2)\n" per tuple
/// in the engines' sorted order. Equal digests <=> identical answer sets.
void FoldAnswers(const std::string& name,
                 const std::vector<std::vector<Term>>& answers,
                 std::string* digest, uint64_t* count) {
  for (const auto& tuple : answers) {
    digest->append(name);
    digest->push_back('(');
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) digest->append(", ");
      digest->append(tuple[i].ToString());
    }
    digest->append(")\n");
  }
  *count += answers.size();
}

struct NamedQuery {
  std::string name;
  const UCQ* query;
};

bool ResolveQueries(const Program& program, const std::string& wanted,
                    std::vector<NamedQuery>* out) {
  if (!wanted.empty()) {
    auto it = program.queries.find(wanted);
    if (it == program.queries.end()) return false;
    out->push_back({it->first, &it->second});
    return true;
  }
  for (const auto& [name, query] : program.queries) {
    out->push_back({name, &query});
  }
  return true;
}

int EvaluateRequest(const WorkerInvocation& invocation,
                    const Program& program, Governor* governor,
                    WorkerResult* result) {
  const EvalRequest& request = invocation.request;
  result->id = request.id;
  result->degraded = invocation.degraded;
  result->method = RequestKindName(request.kind);
  Stopwatch watch;

  if (request.kind == RequestKind::kChase) {
    ChaseOptions options;
    options.governor = governor;
    options.max_level = request.max_level;
    options.checkpoint_every = 1;
    options.collect_witness = invocation.collect_witness;
    ResumeInfo info;
    ChaseResult chase;
    if (!invocation.checkpoint_dir.empty()) {
      chase = ResumeChase(invocation.checkpoint_dir, program.database,
                          program.tgds, options, &info);
    } else {
      chase = Chase(program.database, program.tgds, options);
    }
    result->status = chase.outcome.status;
    result->exact = chase.complete && !invocation.degraded;
    result->facts = chase.instance.size();
    result->answer_count = chase.instance.size();
    result->rounds_completed = chase.rounds_completed;
    result->resumed = info.resumed;
    result->resume_generation = info.generation;
    BinaryWriter writer;
    EncodeInstance(chase.instance, &writer);
    result->answer_crc = Crc32(writer.buffer());
    if (invocation.collect_witness) {
      EvalWitness witness;
      witness.kind = EvalWitness::Kind::kDerivation;
      witness.method = result->method;
      witness.derivation = std::move(chase.derivation);
      // A resume from a pre-witness snapshot loses the trigger log; the
      // result stands but can only be reported unverified.
      witness.certified = witness.derivation.collected;
      result->witness = EncodeEvalWitnessToString(witness);
    }
    result->eval_ms = watch.ElapsedMs();
    return kWorkerExitOk;
  }

  std::vector<NamedQuery> queries;
  if (!ResolveQueries(program, request.query, &queries)) {
    return kWorkerExitBadRequest;
  }

  std::string digest;
  uint64_t count = 0;
  bool exact = true;
  Status worst = Status::kCompleted;
  std::string method = RequestKindName(request.kind);
  const bool collect = invocation.collect_witness;
  // One EvalWitness per named query; merged below.
  std::vector<EvalWitness> collected;
  for (const NamedQuery& nq : queries) {
    EvalWitness query_witness;
    switch (request.kind) {
      case RequestKind::kCq: {
        std::vector<std::vector<Term>> answers;
        if (collect) {
          answers = EvaluateUCQWithWitnesses(
              *nq.query, program.database, &query_witness.answers, 0,
              governor);
          query_witness.kind = EvalWitness::Kind::kAnswers;
          query_witness.certified = true;
        } else {
          answers = EvaluateUCQ(*nq.query, program.database, 0, governor);
        }
        FoldAnswers(nq.name, answers, &digest, &count);
        break;
      }
      case RequestKind::kCqs: {
        Cqs cqs{program.tgds, *nq.query};
        WitnessOptions witness_options;
        witness_options.collect = collect;
        CqsEvalResult eval =
            EvaluateCqs(cqs, program.database, /*check_promise=*/true,
                        governor, witness_options);
        if (!eval.promise_ok) method = "cqs(promise-violated)";
        if (eval.status != Status::kCompleted) worst = eval.status;
        if (collect) {
          query_witness.kind = EvalWitness::Kind::kAnswers;
          query_witness.answers = std::move(eval.witnesses);
          query_witness.certified = true;
        }
        FoldAnswers(nq.name, eval.answers, &digest, &count);
        break;
      }
      case RequestKind::kOmq: {
        Omq omq = Omq::WithFullDataSchema(program.tgds, *nq.query);
        OmqEvalOptions options;
        options.governor = governor;
        options.checkpoint_dir = invocation.checkpoint_dir;
        options.witness.collect = collect;
        if (invocation.degraded) {
          options.fallback_chase_level = invocation.degraded_fallback_level;
        }
        OmqEvalResult eval = EvaluateOmq(omq, program.database, options);
        if (!eval.exact || eval.partial) exact = false;
        if (eval.status != Status::kCompleted) worst = eval.status;
        method = eval.method;
        if (collect) query_witness = std::move(eval.witness);
        FoldAnswers(nq.name, eval.answers, &digest, &count);
        break;
      }
      case RequestKind::kChase:
        break;  // handled above
    }
    if (collect) {
      for (HomWitness& hom : query_witness.answers) hom.query = nq.name;
      collected.push_back(std::move(query_witness));
    }
    if (governor->Tripped()) break;
  }
  if (governor->Tripped()) {
    worst = governor->status();
    exact = false;
  }
  result->status = worst;
  result->exact = exact && !invocation.degraded;
  result->method = method;
  result->answer_count = count;
  result->answer_crc = Crc32(digest);
  result->facts = program.database.size();
  if (collect) {
    EvalWitness merged;
    if (collected.size() == 1) {
      merged = std::move(collected[0]);
    } else {
      // Multi-query requests: homomorphism certificates concatenate, but
      // two independent chase derivations cannot share one witness. A
      // request mixing chase-backed queries is reported uncertified.
      merged.kind = EvalWitness::Kind::kAnswers;
      merged.certified = !collected.empty();
      for (EvalWitness& cw : collected) {
        if (cw.kind == EvalWitness::Kind::kAnswers) {
          merged.certified = merged.certified && cw.certified;
          for (HomWitness& hom : cw.answers) {
            merged.answers.push_back(std::move(hom));
          }
        } else {
          merged.certified = false;
        }
      }
    }
    merged.method = method;
    result->witness = EncodeEvalWitnessToString(merged);
  }
  result->eval_ms = watch.ElapsedMs();
  return kWorkerExitOk;
}

}  // namespace

const char* WorkerExitCodeName(int code) {
  switch (code) {
    case kWorkerExitOk:
      return "ok";
    case kWorkerExitParseError:
      return "parse-error";
    case kWorkerExitBadRequest:
      return "bad-request";
    case kWorkerExitOom:
      return "oom";
    case kWorkerExitResultWriteError:
      return "result-write-error";
    case kWorkerExitSupervisorGone:
      return "supervisor-gone";
  }
  return "exit";
}

std::string EncodeWorkerResult(const WorkerResult& result) {
  BinaryWriter writer;
  writer.WriteString(result.id);
  writer.WriteI32(static_cast<int32_t>(result.status));
  writer.WriteBool(result.exact);
  writer.WriteBool(result.degraded);
  writer.WriteString(result.method);
  writer.WriteU64(result.answer_count);
  writer.WriteU32(result.answer_crc);
  writer.WriteU64(result.facts);
  writer.WriteU64(result.rounds_completed);
  writer.WriteBool(result.resumed);
  writer.WriteU64(result.resume_generation);
  // eval_ms as microseconds; latency needs no float precision.
  writer.WriteU64(static_cast<uint64_t>(result.eval_ms * 1000.0));
  writer.WriteString(result.witness);
  return WrapSnapshot(kSnapshotKindWorkerResult, writer.Take());
}

SnapshotStatus DecodeWorkerResult(std::string_view bytes,
                                  WorkerResult* result) {
  std::string_view payload;
  SnapshotStatus status =
      UnwrapSnapshot(bytes, kSnapshotKindWorkerResult, &payload);
  if (!status.ok()) return status;
  BinaryReader reader(payload);
  WorkerResult decoded;
  int32_t status_raw = 0;
  uint64_t eval_us = 0;
  if (!reader.ReadString(&decoded.id) || !reader.ReadI32(&status_raw) ||
      !reader.ReadBool(&decoded.exact) || !reader.ReadBool(&decoded.degraded) ||
      !reader.ReadString(&decoded.method) ||
      !reader.ReadU64(&decoded.answer_count) ||
      !reader.ReadU32(&decoded.answer_crc) || !reader.ReadU64(&decoded.facts) ||
      !reader.ReadU64(&decoded.rounds_completed) ||
      !reader.ReadBool(&decoded.resumed) ||
      !reader.ReadU64(&decoded.resume_generation) ||
      !reader.ReadU64(&eval_us) || !reader.ReadString(&decoded.witness) ||
      !reader.AtEnd()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "worker result blob cut short");
  }
  if (status_raw < 0 || status_raw > static_cast<int32_t>(Status::kCancelled)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "worker result has impossible status");
  }
  decoded.status = static_cast<Status>(status_raw);
  decoded.eval_ms = static_cast<double>(eval_us) / 1000.0;
  *result = std::move(decoded);
  return SnapshotStatus::Ok();
}

int RunWorkerInProcess(const WorkerInvocation& invocation, int result_fd,
                       int heartbeat_fd) {
  std::optional<HeartbeatWriter> heartbeat;
  if (heartbeat_fd >= 0) {
    heartbeat.emplace(heartbeat_fd, invocation.heartbeat_interval_ms);
  }

  try {
    ApplyPreEvalFault(invocation.fault);

    std::string text;
    if (!ReadFileBytes(invocation.request.program_path, &text).ok()) {
      return kWorkerExitParseError;
    }
    ParseResult parsed = ParseProgram(text);
    if (!parsed.ok) return kWorkerExitParseError;

    // A kill/stall fault rides the governor's deterministic fault
    // injector: the evaluation stops at exactly checkpoint N (status
    // kCancelled), then the worker dies for real.
    std::optional<TestFaultInjector> injector;
    if ((invocation.fault.type == FaultSpec::Type::kKill ||
         invocation.fault.type == FaultSpec::Type::kStall) &&
        invocation.fault.at_checkpoint > 0) {
      injector.emplace(Status::kCancelled, invocation.fault.at_checkpoint);
    }
    Governor governor(invocation.request.budget,
                      injector.has_value() ? &*injector : nullptr);

    WorkerResult result;
    const int code =
        EvaluateRequest(invocation, parsed.program, &governor, &result);
    ApplyPostEvalFault(invocation.fault, governor.status());
    if (code != kWorkerExitOk) return code;

    if (result_fd >= 0) {
      int write_errno = 0;
      if (!WriteAllToFd(result_fd, EncodeWorkerResult(result),
                        &write_errno)) {
        // SIGPIPE is ignored in the worker (subprocess.cc child setup),
        // so a dead supervisor lands here as EPIPE, not a signal death.
        return IsPeerGoneErrno(write_errno) ? kWorkerExitSupervisorGone
                                            : kWorkerExitResultWriteError;
      }
    }
    return kWorkerExitOk;
  } catch (const std::bad_alloc&) {
    return kWorkerExitOom;
  }
}

}  // namespace gqe
