#ifndef GQE_SERVE_REQUEST_H_
#define GQE_SERVE_REQUEST_H_

#include <string>
#include <vector>

#include "base/governor.h"

namespace gqe {

/// What an evaluation request asks for. Each kind maps onto one of the
/// repo's engines over a `.gqe` program in the existing parser syntax:
///   chase  materialize chase(D, Σ) (crash-safe, resumable)
///   cq     closed-world UCQ evaluation q(D) (no constraints consulted)
///   cqs    CQS-Evaluation under the constraint promise (Section 3.2)
///   omq    open-world certain answers Q(D) (Section 3.1)
enum class RequestKind : int { kChase = 0, kCq = 1, kCqs = 2, kOmq = 3 };

const char* RequestKindName(RequestKind kind);

/// A deterministic fault a worker injects into itself, used by the chaos
/// tests to exercise every containment path without racing wall clocks.
/// `at_checkpoint` counts governor checkpoints — deterministic for a
/// fixed workload — so the fault lands at the same logical point every
/// run. Applied only on attempt `on_attempt` (default: the first), so a
/// retry of the same request runs clean.
struct FaultSpec {
  enum class Type : int {
    kNone = 0,
    /// raise(SIGKILL) at the checkpoint — the kernel's `kill -9`.
    kKill = 1,
    /// raise(SIGSTOP) at the checkpoint: the whole worker (heartbeat
    /// thread included) freezes until the supervisor's heartbeat timeout
    /// puts it down.
    kStall = 2,
    /// A tiny RLIMIT_AS installed before evaluation: the next sizable
    /// allocation fails and the worker exits with the OOM code.
    kOom = 3,
    /// _exit(exit_code) before any work — a spurious worker death.
    kExit = 4,
    /// A one-second RLIMIT_CPU installed before evaluation, then a spin
    /// loop: the kernel delivers SIGXCPU (a cpu-limit death).
    kCpu = 5,
  };

  Type type = Type::kNone;
  /// Governor checkpoint the kill/stall fires at (0 = immediately).
  uint64_t at_checkpoint = 0;
  int exit_code = 1;
  int on_attempt = 1;

  bool active() const { return type != Type::kNone; }
};

/// One manifest entry.
struct EvalRequest {
  std::string id;
  RequestKind kind = RequestKind::kChase;

  /// Path of the `.gqe` program (facts + TGDs + named queries). Relative
  /// paths are resolved against the manifest file's directory.
  std::string program_path;

  /// Query name for cq/cqs/omq kinds. Empty = evaluate every query in
  /// the program (results are folded in name order, so the answer CRC is
  /// deterministic).
  std::string query;

  /// Per-request budget: max_facts / deadline_ms feed the in-process
  /// governor AND derive the worker's setrlimit caps.
  ExecutionBudget budget;

  /// Extra address-space headroom knob: hard RLIMIT_AS for the worker in
  /// megabytes (0 = no cap).
  size_t address_space_mb = 0;

  /// Chase level bound (chase kind only; negative = unlimited).
  int max_level = -1;

  /// Deterministic self-fault for chaos tests (manifest syntax:
  /// fault=kill@12 | stall@12 | oom | cpu | exit:3, optional
  /// "/attempt=N").
  FaultSpec fault;
};

struct Manifest {
  std::vector<EvalRequest> requests;
};

/// Parses manifest text. One request per line, `#`/`%` comments, blank
/// lines ignored. Each line is space-separated key=value fields:
///
///   id=r1 kind=chase program=tc.gqe max_facts=100000 deadline_ms=5000
///   id=r2 kind=omq program=univ.gqe query=q as_mb=512
///   id=r3 kind=cqs program=promise.gqe query=q fault=kill@8
///
/// Required: id (unique), kind, program. Unknown keys are an error (a
/// typo must not silently change a request). `base_dir` resolves
/// relative program paths.
bool ParseManifest(std::string_view text, const std::string& base_dir,
                   Manifest* manifest, std::string* error);

/// Reads and parses a manifest file; relative program paths resolve
/// against the file's directory.
bool ParseManifestFile(const std::string& path, Manifest* manifest,
                       std::string* error);

/// Formats a request back into one canonical manifest line (no trailing
/// newline) that ParseManifest round-trips to an equal request. The
/// journal records admissions as exactly this line, which makes it both
/// the resubmission payload after a restart and the idempotency check:
/// a resent id whose canonical line differs is a *different* request
/// reusing an id, and is rejected instead of served from the cache.
std::string FormatRequestLine(const EvalRequest& request);

}  // namespace gqe

#endif  // GQE_SERVE_REQUEST_H_
