#!/usr/bin/env bash
# Storage-shard smoke test for the partitioned, self-healing fact store.
# Every durable storage-partitioned run (bench_shard --storage
# --checkpoint-dir) must print a `final:` line — status, rounds, fact
# count, CRC-32 of the serialized instance — bit-identical to the
# fault-free single-process reference:
#
#   1. at every shard count (1, 2, 4, 8);
#   2. under the full chaos matrix — {kill, oom, stall, corrupt} x
#      {load, discover} phase — injected at EVERY round boundary of a
#      4-shard run, one fault per run;
#   3. across a mid-run reshard (2 -> 8 storage shards while the chase
#      is running);
#   4. after kill -9 of the whole coordinator mid-chase, resumed from
#      the on-disk engine checkpoints and per-shard fragments;
#
# and the newest durable engine snapshot bytes must be identical across
# all of the above (cmp, not just CRC).
#
# Usage: scripts/storage_shard_smoke.sh <path-to-bench_shard> [n]
set -u

BENCH="${1:?usage: $0 <bench_shard> [n]}"
N="${2:-80}"
WORK="$(mktemp -d)"
BENCH_PID=""
cleanup() {
  if [ -n "$BENCH_PID" ]; then
    kill -9 "$BENCH_PID" 2>/dev/null
    wait "$BENCH_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM HUP

run_storage() {
  # run_storage <dir> <shards> [flags...]: one durable storage run.
  local dir="$1" shards="$2"
  shift 2
  "$BENCH" --checkpoint-dir "$dir" --checkpoint-every 1 --durable-n "$N" \
    --storage --shards "$shards" "$@"
}

newest_snap() {
  ls "$1"/chase-*.snap | sort -t- -k2 -n | tail -1
}

echo "== reference: fault-free single-process run =="
REF_DIR="$WORK/ref"
REF_LINE="$(run_storage "$REF_DIR" 1 | grep '^final:')" \
  || { echo "reference run failed"; exit 1; }
echo "$REF_LINE"
ROUNDS="$(echo "$REF_LINE" | sed 's/.*rounds=\([0-9]*\).*/\1/')"

check_final() {
  # check_final <label> <line>: diff a run's final line vs the reference.
  if [ "$2" != "$REF_LINE" ]; then
    echo "FAIL($1): final line differs from fault-free reference run"
    echo "  reference: $REF_LINE"
    echo "  got:       $2"
    exit 1
  fi
  echo "ok($1): $2"
}

check_snap() {
  # check_snap <label> <dir>: newest durable snapshot bytes vs reference.
  if ! cmp -s "$(newest_snap "$REF_DIR")" "$(newest_snap "$2")"; then
    echo "FAIL($1): durable snapshot bytes differ from reference"
    exit 1
  fi
}

echo "== shard-count sweep: 2, 4, 8 storage shards, fault-free =="
for S in 2 4 8; do
  DIR="$WORK/sweep$S"
  LINE="$(run_storage "$DIR" "$S" | grep '^final:')"
  check_final "shards=$S" "$LINE"
  check_snap "shards=$S" "$DIR"
done

echo "== chaos matrix: {kill,oom,stall,corrupt} x {load,discover} x every round boundary =="
for PHASE in load discover; do
  for FAULT in kill oom stall corrupt; do
    B=0
    while [ "$B" -le "$ROUNDS" ]; do
      DIR="$WORK/chaos_${PHASE}_${FAULT}_${B}"
      OUT="$(run_storage "$DIR" 4 "--chaos-$FAULT=$B:$((B % 4))" \
        "--chaos-phase=$PHASE")"
      if ! echo "$OUT" | grep -q '^storage event:'; then
        echo "FAIL($FAULT/$PHASE@$B): injected fault left no recovery event"
        exit 1
      fi
      check_final "chaos=$FAULT/$PHASE@$B" "$(echo "$OUT" | grep '^final:')"
      check_snap "chaos=$FAULT/$PHASE@$B" "$DIR"
      B=$((B + 2))
    done
  done
done

echo "== mid-run reshard: 2 -> 8 storage shards at round 2 =="
DIR="$WORK/reshard"
OUT="$(run_storage "$DIR" 2 --reshard-at=2 --reshard-to=8)"
if ! echo "$OUT" | grep '^storage event:' | grep -q reshard; then
  echo "FAIL(reshard): no reshard event recorded"; exit 1
fi
check_final "reshard 2->8" "$(echo "$OUT" | grep '^final:')"
check_snap "reshard 2->8" "$DIR"

echo "== coordinator kill -9 mid-chase, resume from fragments =="
KILL_DIR="$WORK/killed"
run_storage "$KILL_DIR" 4 >"$WORK/killed.log" 2>&1 &
BENCH_PID=$!
for _ in $(seq 1 100); do
  if ls "$KILL_DIR"/chase-*.snap >/dev/null 2>&1; then break; fi
  sleep 0.1
done
kill -9 "$BENCH_PID" 2>/dev/null
wait "$BENCH_PID" 2>/dev/null
KILLED_PID="$BENCH_PID"
BENCH_PID=""
if ! ls "$KILL_DIR"/chase-*.snap >/dev/null 2>&1; then
  echo "FAIL: no checkpoint was written before the kill"; exit 1
fi
# The SIGKILL may have stranded storage workers mid-round; they exit on
# their own once their command pipe breaks, and the resumed coordinator
# below rebuilds every fragment from disk (or reseeds) regardless.
echo "killed coordinator pid $KILLED_PID; state on disk:"
ls "$KILL_DIR" "$KILL_DIR/storage" 2>/dev/null

RESUME_OUT="$(run_storage "$KILL_DIR" 4)"
echo "$RESUME_OUT" | grep '^resume:'
if ! echo "$RESUME_OUT" | grep -q 'resumed=yes'; then
  echo "FAIL: resume did not pick up the on-disk checkpoint"; exit 1
fi
check_final "coordinator kill9" "$(echo "$RESUME_OUT" | grep '^final:')"
check_snap "coordinator kill9" "$KILL_DIR"

echo "PASS: all storage-partitioned/chaotic/resharded runs match: $REF_LINE"
