#!/usr/bin/env bash
# Crash-recovery smoke test: run the durable chase to completion, run it
# again with a kill -9 mid-flight, resume from the on-disk checkpoint,
# and require the resumed run's final instance line (status, rounds,
# fact count, CRC-32 of the serialized instance) to match the
# uninterrupted run bit-for-bit. Then corrupt the newest snapshot and
# require the resume to fall back to the previous good generation with
# the same final line.
#
# Finally, replay a fixed configuration against the pre-recorded golden
# checkpoint in tests/golden/: the final line and the newest snapshot
# bytes must match what was recorded when the format was frozen, so a
# data-layout or codec change that silently shifts insertion order /
# null ids / snapshot bytes fails here even if it is self-consistent.
#
# Usage: scripts/crash_recovery_smoke.sh <path-to-bench_chase> [n]
set -u

BENCH="${1:?usage: $0 <bench_chase> [n]}"
N="${2:-200}"
WORK="$(mktemp -d)"
BENCH_PID=""
# Clean up the temp dir — and any still-running backgrounded bench — on
# every exit path, including Ctrl-C and a terminated CI job.
cleanup() {
  if [ -n "$BENCH_PID" ]; then
    kill -9 "$BENCH_PID" 2>/dev/null
    wait "$BENCH_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM HUP

run_final_line() {
  # Prints only the diffable `final: ...` line of a durable run.
  "$BENCH" --checkpoint-dir "$1" --checkpoint-every 1 --durable-n "$N" \
    --threads 2 | grep '^final:'
}

echo "== reference: uninterrupted run =="
REF_DIR="$WORK/ref"
REF_LINE="$(run_final_line "$REF_DIR")" || { echo "reference run failed"; exit 1; }
echo "$REF_LINE"

echo "== interrupted run: kill -9 mid-chase =="
KILL_DIR="$WORK/killed"
# Background the binary directly (not a compound command) so $! is the
# bench PID and the kill actually lands on it.
"$BENCH" --checkpoint-dir "$KILL_DIR" --checkpoint-every 1 --durable-n "$N" \
  --threads 2 >"$WORK/killed.log" 2>&1 &
BENCH_PID=$!
# Wait until at least one snapshot generation exists, then kill hard.
for _ in $(seq 1 100); do
  if ls "$KILL_DIR"/chase-*.snap >/dev/null 2>&1; then break; fi
  sleep 0.1
done
kill -9 "$BENCH_PID" 2>/dev/null
wait "$BENCH_PID" 2>/dev/null
KILLED_PID="$BENCH_PID"
BENCH_PID=""
if ! ls "$KILL_DIR"/chase-*.snap >/dev/null 2>&1; then
  echo "FAIL: no checkpoint was written before the kill"; exit 1
fi
echo "killed pid $KILLED_PID; generations on disk:"
ls "$KILL_DIR"

echo "== resume from disk =="
RESUME_OUT="$("$BENCH" --checkpoint-dir "$KILL_DIR" --checkpoint-every 1 \
  --durable-n "$N" --threads 2)"
echo "$RESUME_OUT" | grep '^resume:'
RESUME_LINE="$(echo "$RESUME_OUT" | grep '^final:')"
echo "$RESUME_LINE"
if ! echo "$RESUME_OUT" | grep -q 'resumed=yes'; then
  echo "FAIL: resume did not pick up the on-disk checkpoint"; exit 1
fi
if [ "$RESUME_LINE" != "$REF_LINE" ]; then
  echo "FAIL: resumed final line differs from uninterrupted run"
  echo "  reference: $REF_LINE"
  echo "  resumed:   $RESUME_LINE"
  exit 1
fi

echo "== corruption fallback: bit-flip the newest snapshot =="
NEWEST="$(ls "$KILL_DIR"/chase-*.snap | sort -t- -k2 -n | tail -1)"
SIZE="$(stat -c%s "$NEWEST")"
printf '\xff' | dd of="$NEWEST" bs=1 seek=$((SIZE / 2)) conv=notrunc 2>/dev/null
CORRUPT_OUT="$("$BENCH" --checkpoint-dir "$KILL_DIR" --checkpoint-every 1 \
  --durable-n "$N" --threads 2)"
echo "$CORRUPT_OUT" | grep '^resume:'
CORRUPT_LINE="$(echo "$CORRUPT_OUT" | grep '^final:')"
if ! echo "$CORRUPT_OUT" | grep '^resume:' | grep -q 'skipped=[1-9]'; then
  echo "FAIL: corrupted snapshot was not skipped"; exit 1
fi
if [ "$CORRUPT_LINE" != "$REF_LINE" ]; then
  echo "FAIL: fallback final line differs from uninterrupted run"
  echo "  reference: $REF_LINE"
  echo "  fallback:  $CORRUPT_LINE"
  exit 1
fi

echo "== golden checkpoint: fixed n=64 run vs recorded snapshot =="
GOLDEN_DIR="$(cd "$(dirname "$0")/.." && pwd)/tests/golden"
GOLDEN_FINAL="$GOLDEN_DIR/durable_chase_n64.final"
GOLDEN_SNAP="$GOLDEN_DIR/durable_chase_n64.snap"
if [ -f "$GOLDEN_FINAL" ] && [ -f "$GOLDEN_SNAP" ]; then
  GOLD_RUN="$WORK/golden"
  GOLD_LINE="$("$BENCH" --checkpoint-dir "$GOLD_RUN" --checkpoint-every 1 \
    --durable-n 64 --threads 2 | grep '^final:')"
  EXPECT_LINE="$(cat "$GOLDEN_FINAL")"
  if [ "$GOLD_LINE" != "$EXPECT_LINE" ]; then
    echo "FAIL: final line drifted from the recorded golden"
    echo "  golden:  $EXPECT_LINE"
    echo "  current: $GOLD_LINE"
    exit 1
  fi
  GOLD_NEWEST="$(ls "$GOLD_RUN"/chase-*.snap | sort -t- -k2 -n | tail -1)"
  if ! cmp -s "$GOLD_NEWEST" "$GOLDEN_SNAP"; then
    echo "FAIL: newest snapshot bytes differ from the recorded golden"
    echo "  golden:  $GOLDEN_SNAP"
    echo "  current: $GOLD_NEWEST"
    exit 1
  fi
  echo "golden checkpoint matches: $GOLD_LINE"
else
  echo "SKIP: no golden checkpoint recorded under tests/golden/"
fi

echo "PASS: kill -9 resume and corruption fallback both match: $REF_LINE"
