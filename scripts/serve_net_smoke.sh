#!/usr/bin/env bash
# Network serving smoke: start gqe_serve --listen as a real daemon, then
# prove the serving tier's contract end to end over actual sockets:
#
#   1. Baseline: the result lines a TCP client receives are
#      bit-identical to a batch (file-manifest) run of the same request
#      lines — including when every request byte arrives in its own
#      write, and when the requests are spread over 4 connections.
#   2. Chaos matrix: every socket-level fault (mid-frame disconnect,
#      truncation + EOF, bit flip, oversized length prefix, bad magic,
#      bad version, unknown frame type, slow-loris stall, connection
#      flood, request flood) ends in a structured error frame or a
#      clean close — never a hang, never a crash — and the daemon still
#      answers clean requests afterwards, still byte-identically.
#   3. Graceful drain: SIGTERM makes the daemon finish in-flight work,
#      flush, and exit 0 on its own.
#
# Usage: scripts/serve_net_smoke.sh <gqe_serve> <gqe_net_client> [manifest]
set -u

SERVE="${1:?usage: $0 <gqe_serve> <gqe_net_client> [manifest]}"
CLIENT="${2:?usage: $0 <gqe_serve> <gqe_net_client> [manifest]}"
MANIFEST="${3:-examples/serve/manifest.txt}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM HUP

PROGRAM_ROOT="$(cd "$(dirname "$MANIFEST")" && pwd)"
grep -v '^[#%]' "$MANIFEST" | grep -v '^[[:space:]]*$' > "$WORK/requests.txt"

start_server() {
  # $@: extra server flags. Writes the bound port into $PORT.
  rm -f "$WORK/port"
  "$SERVE" --listen 0 --port-file "$WORK/port" \
    --program-root "$PROGRAM_ROOT" --heartbeat-timeout-ms 400 \
    --backoff-base-ms 5 "$@" >"$WORK/server.out" 2>"$WORK/server.err" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "FAIL: server died on startup"; cat "$WORK/server.err"; exit 1
    fi
    sleep 0.1
  done
  PORT="$(cat "$WORK/port")"
  [ -n "$PORT" ] || { echo "FAIL: no port file"; exit 1; }
}

check_alive() {
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server crashed ($1)"; cat "$WORK/server.err"; exit 1
  fi
}

echo "== baseline: batch run of the manifest =="
if ! "$SERVE" "$MANIFEST" --quiet-ops --heartbeat-timeout-ms 400 \
    >"$WORK/batch.out" 2>"$WORK/batch.err"; then
  echo "FAIL: batch serve run failed"; cat "$WORK/batch.err"; exit 1
fi
grep '^result:' "$WORK/batch.out" > "$WORK/batch.results"
[ -s "$WORK/batch.results" ] || { echo "FAIL: batch run had no results"; exit 1; }

echo "== network run: one connection, single writes =="
start_server
"$CLIENT" --port "$PORT" --requests-file "$WORK/requests.txt" \
  > "$WORK/net1.results" || { echo "FAIL: net client (1 conn)"; exit 1; }
diff -u "$WORK/batch.results" "$WORK/net1.results" || {
  echo "FAIL: network results differ from the batch run"; exit 1; }
echo "bit-identical over 1 connection"

echo "== network run: 4 connections, one byte per write =="
"$CLIENT" --port "$PORT" --requests-file "$WORK/requests.txt" \
  --connections 4 --bytes-per-write 1 \
  > "$WORK/net4.results" || { echo "FAIL: net client (4 conns, 1B writes)"; exit 1; }
diff -u "$WORK/batch.results" "$WORK/net4.results" || {
  echo "FAIL: byte-at-a-time results differ from the batch run"; exit 1; }
echo "bit-identical over 4 connections, one byte per write"
check_alive "after baseline runs"
kill -TERM "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null

echo "== chaos matrix (tight limits, faults seeded) =="
# Short deadlines so stalls resolve in seconds; a small connection cap
# and queue plus --no-coalesce so the floods actually shed.
start_server --read-timeout-ms 500 --idle-timeout-ms 3000 \
  --write-stall-ms 1000 --max-connections 8 --queue-capacity 2 \
  --concurrency 1 --no-coalesce
FAULTS="ping midframe-disconnect truncate bitflip oversize bad-magic \
        bad-version unknown-type stalled-read"
for fault in $FAULTS; do
  if ! "$CLIENT" --port "$PORT" --fault "$fault" --seed 11 --timeout-ms 5000 \
      --request "$(head -1 "$WORK/requests.txt")" | tee -a "$WORK/faults.out"; then
    echo "FAIL: fault $fault did not resolve structurally"; exit 1
  fi
  check_alive "after fault $fault"
done
"$CLIENT" --port "$PORT" --fault flood-conns --count 32 --timeout-ms 5000 \
  | tee -a "$WORK/faults.out" || { echo "FAIL: flood-conns"; exit 1; }
check_alive "after flood-conns"
"$CLIENT" --port "$PORT" --fault flood-requests --count 24 --timeout-ms 20000 \
  --request "$(head -1 "$WORK/requests.txt")" \
  | tee -a "$WORK/faults.out" || { echo "FAIL: flood-requests"; exit 1; }
grep -q ' shed=[1-9]' "$WORK/faults.out" || {
  echo "FAIL: the floods never shed anything structured"; exit 1; }
check_alive "after flood-requests"

echo "== survivor check: a clean request after the whole matrix =="
# One request at a time: this server's tiny queue (capacity 2, there to
# make the flood shed) would legitimately shed a pipelined batch.
head -1 "$WORK/batch.results" > "$WORK/expect1.results"
"$CLIENT" --port "$PORT" --request "$(head -1 "$WORK/requests.txt")" \
  > "$WORK/after.results" || { echo "FAIL: post-chaos request failed"; exit 1; }
diff -u "$WORK/expect1.results" "$WORK/after.results" || {
  echo "FAIL: post-chaos result differs from the batch run"; exit 1; }
echo "still bit-identical after the chaos matrix"

echo "== graceful drain: SIGTERM must finish, flush and exit 0 =="
kill -TERM "$SERVER_PID"
DRAIN_OK=0
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.1
done
[ "$DRAIN_OK" = 1 ] || { echo "FAIL: server did not drain within 10s"; exit 1; }
wait "$SERVER_PID"; RC=$?
[ "$RC" = 0 ] || { echo "FAIL: drain exit code $RC"; exit 1; }
grep -q 'drained' "$WORK/server.err" || {
  echo "FAIL: no drain line in server log"; cat "$WORK/server.err"; exit 1; }
SERVER_PID=""

echo "PASS: network serving tier — byte-identical results, structured chaos, clean drain"
