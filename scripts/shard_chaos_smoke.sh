#!/usr/bin/env bash
# Shard-chaos smoke test for the fault-tolerant sharded chase. The
# durable sharded run (bench_shard --checkpoint-dir) must print a
# `final:` line — status, rounds, fact count, CRC-32 of the serialized
# instance — that is bit-identical to the fault-free single-shard run:
#
#   1. at every shard count (1, 2, 8);
#   2. with one fault of every kind injected mid-run (SIGKILL a worker,
#      RLIMIT_AS OOM, SIGSTOP stall, bit-flipped exchange payload);
#   3. after kill -9 of the whole coordinator mid-chase, resumed from
#      the on-disk checkpoints under a DIFFERENT shard count (the
#      snapshots are shard-count agnostic, so resharding across a crash
#      is just a resume);
#
# and the newest durable snapshot bytes must be identical across all of
# the above (cmp, not just CRC).
#
# Usage: scripts/shard_chaos_smoke.sh <path-to-bench_shard> [n]
set -u

BENCH="${1:?usage: $0 <bench_shard> [n]}"
N="${2:-120}"
WORK="$(mktemp -d)"
BENCH_PID=""
cleanup() {
  if [ -n "$BENCH_PID" ]; then
    kill -9 "$BENCH_PID" 2>/dev/null
    wait "$BENCH_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM HUP

run_shard() {
  # run_shard <dir> <shards> [chaos flags...]: one durable sharded run.
  local dir="$1" shards="$2"
  shift 2
  "$BENCH" --checkpoint-dir "$dir" --checkpoint-every 1 --durable-n "$N" \
    --shards "$shards" "$@"
}

newest_snap() {
  ls "$1"/chase-*.snap | sort -t- -k2 -n | tail -1
}

echo "== reference: fault-free single-shard run =="
REF_DIR="$WORK/ref"
REF_LINE="$(run_shard "$REF_DIR" 1 | grep '^final:')" \
  || { echo "reference run failed"; exit 1; }
echo "$REF_LINE"

check_final() {
  # check_final <label> <line>: diff a run's final line vs the reference.
  if [ "$2" != "$REF_LINE" ]; then
    echo "FAIL($1): final line differs from fault-free single-shard run"
    echo "  reference: $REF_LINE"
    echo "  got:       $2"
    exit 1
  fi
  echo "ok($1): $2"
}

check_snap() {
  # check_snap <label> <dir>: newest durable snapshot bytes vs reference.
  if ! cmp -s "$(newest_snap "$REF_DIR")" "$(newest_snap "$2")"; then
    echo "FAIL($1): durable snapshot bytes differ from reference"
    exit 1
  fi
}

echo "== shard-count sweep: 2 and 8 shards, fault-free =="
for S in 2 8; do
  DIR="$WORK/sweep$S"
  LINE="$(run_shard "$DIR" "$S" | grep '^final:')"
  check_final "shards=$S" "$LINE"
  check_snap "shards=$S" "$DIR"
done

echo "== chaos matrix: one fault of each kind, 4 shards =="
for FAULT in kill oom stall corrupt; do
  DIR="$WORK/chaos_$FAULT"
  OUT="$(run_shard "$DIR" 4 "--chaos-$FAULT=2:1")"
  echo "$OUT" | grep '^shard event:'
  if ! echo "$OUT" | grep -q '^shard event:'; then
    echo "FAIL($FAULT): injected fault left no recovery event"; exit 1
  fi
  check_final "chaos=$FAULT" "$(echo "$OUT" | grep '^final:')"
  check_snap "chaos=$FAULT" "$DIR"
done

echo "== coordinator kill -9 mid-chase, resume under a different shard count =="
KILL_DIR="$WORK/killed"
"$BENCH" --checkpoint-dir "$KILL_DIR" --checkpoint-every 1 --durable-n "$N" \
  --shards 2 >"$WORK/killed.log" 2>&1 &
BENCH_PID=$!
for _ in $(seq 1 100); do
  if ls "$KILL_DIR"/chase-*.snap >/dev/null 2>&1; then break; fi
  sleep 0.1
done
kill -9 "$BENCH_PID" 2>/dev/null
wait "$BENCH_PID" 2>/dev/null
KILLED_PID="$BENCH_PID"
BENCH_PID=""
if ! ls "$KILL_DIR"/chase-*.snap >/dev/null 2>&1; then
  echo "FAIL: no checkpoint was written before the kill"; exit 1
fi
# The SIGKILL may have stranded shard workers mid-round; they exit on
# their own once their write pipe breaks, and the resumed coordinator
# below is a fresh process unaffected either way.
echo "killed coordinator pid $KILLED_PID; generations on disk:"
ls "$KILL_DIR"

RESUME_OUT="$(run_shard "$KILL_DIR" 8)"
echo "$RESUME_OUT" | grep '^resume:'
if ! echo "$RESUME_OUT" | grep -q 'resumed=yes'; then
  echo "FAIL: resume did not pick up the on-disk checkpoint"; exit 1
fi
check_final "kill9+reshard 2->8" "$(echo "$RESUME_OUT" | grep '^final:')"
check_snap "kill9+reshard 2->8" "$KILL_DIR"

echo "PASS: all sharded/chaotic/resharded runs match: $REF_LINE"
