#!/usr/bin/env bash
# Chaos smoke test for the serving daemon: run a manifest fault-free,
# run it again under --chaos (random SIGKILLs and SIGSTOP stalls
# injected into workers), and require the deterministic `result:` lines
# to be bit-identical — faults may cost retries, never answers. A third
# run with the same chaos seed must reproduce the same report, and a
# manifest-pinned kill must show a checkpoint resume in the ops table.
#
# Every run uses --verify: workers attach machine-checkable witnesses
# and the supervisor independently re-checks each one, so the smoke also
# requires every emitted answer to carry verified=yes. Set VERIFY=0 to
# drop the flag (e.g. to time the uncertified path).
#
# Usage: scripts/chaos_smoke.sh <path-to-gqe_serve> [manifest]
set -u

SERVE="${1:?usage: $0 <gqe_serve> [manifest]}"
MANIFEST="${2:-examples/serve/manifest.txt}"
VERIFY_FLAG="--verify"
if [ "${VERIFY:-1}" = "0" ]; then VERIFY_FLAG=""; fi
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT INT TERM HUP

# ckpt=64 scales the injection points to these small workloads so the
# kills land mid-run rather than after the answer is already computed.
CHAOS="kill=0.3,stall=0.1,seed=11,ckpt=64"

echo "== fault-free run =="
if ! "$SERVE" "$MANIFEST" $VERIFY_FLAG --heartbeat-timeout-ms 400 \
    >"$WORK/clean.out" 2>"$WORK/clean.err"; then
  echo "FAIL: fault-free serve run failed"; cat "$WORK/clean.err"; exit 1
fi
grep '^result:' "$WORK/clean.out" > "$WORK/clean.results"
if ! [ -s "$WORK/clean.results" ]; then
  echo "FAIL: fault-free run produced no result lines"; exit 1
fi
cat "$WORK/clean.results"

if [ -n "$VERIFY_FLAG" ]; then
  # Certified answers: every answer-bearing result line must have had its
  # witness independently re-checked by the supervisor.
  if grep 'state=\(completed\|degraded\)' "$WORK/clean.results" \
      | grep -v 'verified=yes' | grep -q .; then
    echo "FAIL: a result line was not verified"
    grep 'state=\(completed\|degraded\)' "$WORK/clean.results" \
      | grep -v 'verified=yes'
    exit 1
  fi
  echo "every result line verified"
fi

echo "== chaos run: --chaos $CHAOS =="
if ! "$SERVE" "$MANIFEST" $VERIFY_FLAG --chaos "$CHAOS" \
    --heartbeat-timeout-ms 400 \
    --backoff-base-ms 5 >"$WORK/chaos.out" 2>"$WORK/chaos.err"; then
  echo "FAIL: the daemon itself died under chaos"; cat "$WORK/chaos.err"; exit 1
fi
grep '^result:' "$WORK/chaos.out" > "$WORK/chaos.results"

if ! diff -u "$WORK/clean.results" "$WORK/chaos.results"; then
  echo "FAIL: chaos changed the deterministic result lines"; exit 1
fi
echo "result lines bit-identical under chaos"

echo "== chaos determinism: same seed, same report =="
"$SERVE" "$MANIFEST" $VERIFY_FLAG --chaos "$CHAOS" \
  --heartbeat-timeout-ms 400 \
  --backoff-base-ms 5 >"$WORK/chaos2.out" 2>/dev/null || {
  echo "FAIL: second chaos run failed"; exit 1; }
grep '^result:' "$WORK/chaos2.out" > "$WORK/chaos2.results"
if ! diff -q "$WORK/chaos.results" "$WORK/chaos2.results" >/dev/null; then
  echo "FAIL: same chaos seed produced different results"; exit 1
fi

echo "== checkpoint resume: the manifest's pinned kill must resume =="
# The sample manifest pins fault=kill@40 on chain-faulty; its retry must
# report a positive resume generation in the ops table.
if grep -q 'chain-faulty' "$MANIFEST"; then
  # Ops table row: | chain-faulty | chase | completed | 2 | sigkill,ok
  # | <gen> | ... — the resume generation must be a positive number (a
  # dash would mean the retry recomputed from scratch).
  if ! grep -E 'chain-faulty \| chase \| completed \| 2 +\| sigkill,ok +\| [1-9]' \
      "$WORK/clean.out" >/dev/null; then
    echo "FAIL: killed worker's retry did not resume from its checkpoint"
    sed -n '/chain-faulty/p' "$WORK/clean.out"
    exit 1
  fi
fi

echo "PASS: chaos run bit-identical to fault-free run"
