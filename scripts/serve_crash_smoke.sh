#!/usr/bin/env bash
# Durable-serving crash smoke: prove the write-ahead journal's whole
# contract end to end with a real daemon, real sockets and a real
# `kill -9`:
#
#   1. Baseline: a batch run of an amplified manifest (every request
#      repeated under distinct ids) records the golden result lines.
#   2. Crash: the daemon starts with --journal-dir, four concurrent
#      clients stream the requests at it, and the daemon is SIGKILLed
#      mid-flight — no flush, no goodbye.
#   3. Recovery: the daemon restarts on the SAME port and journal. The
#      clients (--retry-deadline-ms) reconnect with backoff and resend
#      their unanswered requests. Every client must exit 0 and every
#      result line must be byte-identical to the golden batch run —
#      completed-before-crash requests replay from the journal, in-flight
#      ones resume from their checkpoints.
#   4. Idempotent replay: resending the ENTIRE request set yields the
#      same bytes again, served from the journal cache (the drained
#      stats line must show journal_hits > 0).
#   5. Graceful drain: SIGTERM flushes the journal and exits 0.
#
# Usage: scripts/serve_crash_smoke.sh <gqe_serve> <gqe_net_client> [manifest]
set -u

SERVE="${1:?usage: $0 <gqe_serve> <gqe_net_client> [manifest]}"
CLIENT="${2:?usage: $0 <gqe_serve> <gqe_net_client> [manifest]}"
MANIFEST="${3:-examples/serve/manifest.txt}"
REPS=8
CONNS=4
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM HUP

PROGRAM_ROOT="$(cd "$(dirname "$MANIFEST")" && pwd)"
JOURNAL="$WORK/journal"

# Amplify the manifest: REPS copies of every request under distinct ids
# (absolute program paths, so the same file drives both the batch
# baseline and the socket clients). More requests = a longer window for
# the kill to land mid-flight.
grep -v '^[#%]' "$MANIFEST" | grep -v '^[[:space:]]*$' \
  | sed "s| program=| program=$PROGRAM_ROOT/|" > "$WORK/base.txt"
: > "$WORK/requests.txt"
for rep in $(seq 1 "$REPS"); do
  sed "s|^id=\([^ ]*\)|id=\1-r$rep|" "$WORK/base.txt" >> "$WORK/requests.txt"
done

start_server() {
  # $1: port (0 = ephemeral). Writes the bound port into $PORT.
  local port="$1"; shift
  rm -f "$WORK/port"
  "$SERVE" --listen "$port" --port-file "$WORK/port" \
    --program-root "$PROGRAM_ROOT" --journal-dir "$JOURNAL" \
    --heartbeat-timeout-ms 400 --backoff-base-ms 5 "$@" \
    >>"$WORK/server.out" 2>>"$WORK/server.err" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "FAIL: server died on startup"; cat "$WORK/server.err"; exit 1
    fi
    sleep 0.1
  done
  PORT="$(cat "$WORK/port")"
  [ -n "$PORT" ] || { echo "FAIL: no port file"; exit 1; }
}

echo "== baseline: batch run of the amplified manifest =="
if ! "$SERVE" "$WORK/requests.txt" --quiet-ops --heartbeat-timeout-ms 400 \
    --backoff-base-ms 5 >"$WORK/batch.out" 2>"$WORK/batch.err"; then
  echo "FAIL: batch serve run failed"; cat "$WORK/batch.err"; exit 1
fi
grep '^result:' "$WORK/batch.out" > "$WORK/batch.results"
TOTAL=$(wc -l < "$WORK/batch.results")
[ "$TOTAL" -gt 0 ] || { echo "FAIL: batch run had no results"; exit 1; }
echo "golden: $TOTAL result lines"

# Round-robin the requests over the clients, and slice the golden
# results the same way: client c's expected output is exactly its slice.
for c in $(seq 0 $((CONNS - 1))); do
  awk -v c="$c" -v n="$CONNS" 'NR % n == (c + 1) % n' \
    "$WORK/requests.txt" > "$WORK/slice$c.txt"
  awk -v c="$c" -v n="$CONNS" 'NR % n == (c + 1) % n' \
    "$WORK/batch.results" > "$WORK/expect$c.results"
done

echo "== crash: kill -9 mid-flight under $CONNS concurrent clients =="
# --concurrency 1 stretches the serving window so the kill lands with
# requests genuinely in flight, not after the fact.
start_server 0 --concurrency 1
CLIENT_PIDS=""
for c in $(seq 0 $((CONNS - 1))); do
  "$CLIENT" --port "$PORT" --requests-file "$WORK/slice$c.txt" \
    --retry-deadline-ms 60000 --timeout-ms 60000 --seed $((c + 1)) \
    > "$WORK/got$c.results" 2>"$WORK/client$c.err" &
  CLIENT_PIDS="$CLIENT_PIDS $!"
done
# Kill the instant the run is provably mid-flight: at least one result
# delivered, and at least a quarter of them still owed.
GOT=0
for _ in $(seq 1 500); do
  GOT=$(cat "$WORK"/got*.results 2>/dev/null | wc -l)
  [ "$GOT" -ge 1 ] && [ "$GOT" -le $((TOTAL * 3 / 4)) ] && break
  sleep 0.01
done
kill -9 "$SERVER_PID" 2>/dev/null
wait "$SERVER_PID" 2>/dev/null
echo "daemon SIGKILLed with $GOT/$TOTAL results delivered"
[ "$GOT" -lt "$TOTAL" ] || {
  echo "FAIL: the kill landed after every request had completed"; exit 1; }

echo "== recovery: restart on the same port and journal =="
start_server "$PORT"
RC_ALL=0
c=0
for pid in $CLIENT_PIDS; do
  if ! wait "$pid"; then
    echo "FAIL: client $c exited nonzero"; cat "$WORK/client$c.err"; RC_ALL=1
  fi
  c=$((c + 1))
done
[ "$RC_ALL" = 0 ] || exit 1
for c in $(seq 0 $((CONNS - 1))); do
  diff -u "$WORK/expect$c.results" "$WORK/got$c.results" || {
    echo "FAIL: client $c results differ from the uninterrupted run"
    exit 1
  }
done
echo "all $TOTAL result lines byte-identical across the crash"

echo "== idempotent replay: resend everything, expect journal hits =="
"$CLIENT" --port "$PORT" --requests-file "$WORK/requests.txt" \
  --retry-deadline-ms 60000 --timeout-ms 60000 \
  > "$WORK/replay.results" || { echo "FAIL: replay client"; exit 1; }
diff -u "$WORK/batch.results" "$WORK/replay.results" || {
  echo "FAIL: journal replay differs from the batch run"; exit 1; }
echo "replay byte-identical"

echo "== graceful drain: SIGTERM must flush the journal and exit 0 =="
kill -TERM "$SERVER_PID"
DRAIN_OK=0
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.1
done
[ "$DRAIN_OK" = 1 ] || { echo "FAIL: server did not drain within 10s"; exit 1; }
wait "$SERVER_PID"; RC=$?
[ "$RC" = 0 ] || { echo "FAIL: drain exit code $RC"; exit 1; }
SERVER_PID=""
grep -q 'drained' "$WORK/server.err" || {
  echo "FAIL: no drain line in server log"; cat "$WORK/server.err"; exit 1; }
grep -q 'journal_hits=[1-9]' "$WORK/server.err" || {
  echo "FAIL: the replay was recomputed, not served from the journal"
  cat "$WORK/server.err"; exit 1; }

echo "PASS: durable serving — kill -9 mid-flight, byte-identical recovery, journal-served replay, clean drain"
